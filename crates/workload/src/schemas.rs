//! The three relational schemas the publications are "organised in"
//! (Section 5), plus the coordination-rule templates translating between
//! them.
//!
//! * **S1 — normalised**: `pub(id, title, year)` + `author(pid, name)`;
//! * **S2 — denormalised**: one wide
//!   `article(id, title, venue, year, first_author)` relation;
//! * **S3 — graph-ish**: `paper(id, title, year)` + `wrote(name, pid)` +
//!   `at_venue(pid, venue)`.
//!
//! S1 carries no venue, so the S1→S2 translation has an **existential**
//! venue variable — exercising labeled-null invention on realistic rules.
//! The template set is weakly acyclic on every topology: venue values only
//! ever flow between venue columns, which never feed back into S1 (see the
//! `templates_weakly_acyclic_on_cliques` test).

use crate::dblp::Publication;
use p2p_relational::Val;

/// Which of the three schemas a node uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemaFamily {
    /// Normalised two-relation schema.
    S1,
    /// Single wide relation.
    S2,
    /// Three-relation graph-ish schema.
    S3,
}

impl SchemaFamily {
    /// Round-robin assignment, matching "organised in 3 different relational
    /// schemas".
    pub fn for_node(node: u32) -> SchemaFamily {
        match node % 3 {
            0 => SchemaFamily::S1,
            1 => SchemaFamily::S2,
            _ => SchemaFamily::S3,
        }
    }

    /// Schema text for `DatabaseSchema::parse`.
    pub fn schema_text(self) -> &'static str {
        match self {
            SchemaFamily::S1 => "pub(id: int, title: str, year: int). author(pid: int, name: str).",
            SchemaFamily::S2 => {
                "article(id: int, title: str, venue: str, year: int, first_author: str)."
            }
            SchemaFamily::S3 => {
                "paper(id: int, title: str, year: int). wrote(name: str, pid: int). \
                 at_venue(pid: int, venue: str)."
            }
        }
    }

    /// Encodes one publication as tuples of this schema.
    pub fn tuples_for(self, p: &Publication) -> Vec<(&'static str, Vec<Val>)> {
        match self {
            SchemaFamily::S1 => {
                let mut out = vec![(
                    "pub",
                    vec![Val::Int(p.id), Val::str(&p.title), Val::Int(p.year)],
                )];
                for a in &p.authors {
                    out.push(("author", vec![Val::Int(p.id), Val::str(a)]));
                }
                out
            }
            SchemaFamily::S2 => vec![(
                "article",
                vec![
                    Val::Int(p.id),
                    Val::str(&p.title),
                    Val::str(&p.venue),
                    Val::Int(p.year),
                    Val::str(&p.authors[0]),
                ],
            )],
            SchemaFamily::S3 => {
                let mut out = vec![
                    (
                        "paper",
                        vec![Val::Int(p.id), Val::str(&p.title), Val::Int(p.year)],
                    ),
                    ("at_venue", vec![Val::Int(p.id), Val::str(&p.venue)]),
                ];
                for a in &p.authors {
                    out.push(("wrote", vec![Val::str(a), Val::Int(p.id)]));
                }
                out
            }
        }
    }

    /// Coordination-rule texts importing `src`'s data (in `src_family`) into
    /// a node of `self`'s family. `src` and `dst` are node names as known to
    /// the system builder.
    pub fn import_rules(self, src_family: SchemaFamily, src: &str, dst: &str) -> Vec<String> {
        use SchemaFamily::*;
        match (src_family, self) {
            (S1, S1) => vec![
                format!("{src}:pub(I,T,Y) => {dst}:pub(I,T,Y)"),
                format!("{src}:author(I,N) => {dst}:author(I,N)"),
            ],
            (S2, S1) => vec![
                format!("{src}:article(I,T,V,Y,N) => {dst}:pub(I,T,Y)"),
                format!("{src}:article(I,T,V,Y,N) => {dst}:author(I,N)"),
            ],
            (S3, S1) => vec![
                format!("{src}:paper(I,T,Y) => {dst}:pub(I,T,Y)"),
                format!("{src}:wrote(N,I) => {dst}:author(I,N)"),
            ],
            // S1 has no venue: V is existential (labeled-null invention).
            (S1, S2) => vec![format!(
                "{src}:pub(I,T,Y), {src}:author(I,N) => {dst}:article(I,T,V,Y,N)"
            )],
            (S2, S2) => vec![format!(
                "{src}:article(I,T,V,Y,N) => {dst}:article(I,T,V,Y,N)"
            )],
            (S3, S2) => vec![format!(
                "{src}:paper(I,T,Y), {src}:wrote(N,I), {src}:at_venue(I,V) => \
                 {dst}:article(I,T,V,Y,N)"
            )],
            (S1, S3) => vec![
                format!("{src}:pub(I,T,Y) => {dst}:paper(I,T,Y)"),
                format!("{src}:author(I,N) => {dst}:wrote(N,I)"),
            ],
            (S2, S3) => vec![
                format!("{src}:article(I,T,V,Y,N) => {dst}:paper(I,T,Y)"),
                format!("{src}:article(I,T,V,Y,N) => {dst}:wrote(N,I)"),
                format!("{src}:article(I,T,V,Y,N) => {dst}:at_venue(I,V)"),
            ],
            (S3, S3) => vec![
                format!("{src}:paper(I,T,Y) => {dst}:paper(I,T,Y)"),
                format!("{src}:wrote(N,I) => {dst}:wrote(N,I)"),
                format!("{src}:at_venue(I,V) => {dst}:at_venue(I,V)"),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dblp::DblpGenerator;
    use p2p_relational::DatabaseSchema;

    #[test]
    fn schema_texts_parse() {
        for f in [SchemaFamily::S1, SchemaFamily::S2, SchemaFamily::S3] {
            DatabaseSchema::parse(f.schema_text()).unwrap();
        }
    }

    #[test]
    fn tuples_fit_their_schema() {
        let mut gen = DblpGenerator::new(5);
        for f in [SchemaFamily::S1, SchemaFamily::S2, SchemaFamily::S3] {
            let schema = DatabaseSchema::parse(f.schema_text()).unwrap();
            let mut db = p2p_relational::Database::new(schema);
            for p in gen.batch(20) {
                for (rel, vals) in f.tuples_for(&p) {
                    db.insert_values(rel, vals).unwrap();
                }
            }
            assert!(db.total_tuples() >= 20);
        }
    }

    #[test]
    fn round_robin_families() {
        assert_eq!(SchemaFamily::for_node(0), SchemaFamily::S1);
        assert_eq!(SchemaFamily::for_node(1), SchemaFamily::S2);
        assert_eq!(SchemaFamily::for_node(2), SchemaFamily::S3);
        assert_eq!(SchemaFamily::for_node(3), SchemaFamily::S1);
    }

    #[test]
    fn all_nine_template_pairs_parse_as_rules() {
        use p2p_core::rule::CoordinationRule;
        use p2p_topology::NodeId;
        let resolve = |s: &str| match s {
            "A" => Some(NodeId(0)),
            "B" => Some(NodeId(1)),
            _ => None,
        };
        for src in [SchemaFamily::S1, SchemaFamily::S2, SchemaFamily::S3] {
            for dst in [SchemaFamily::S1, SchemaFamily::S2, SchemaFamily::S3] {
                for (k, text) in dst.import_rules(src, "B", "A").iter().enumerate() {
                    CoordinationRule::parse(&format!("t{k}"), text, None, &resolve)
                        .unwrap_or_else(|e| panic!("{src:?}->{dst:?} [{text}]: {e}"));
                }
            }
        }
    }

    #[test]
    fn templates_weakly_acyclic_on_cliques() {
        // A 6-node clique (two nodes per family) with rules in both
        // directions everywhere: the S1→S2 existential must not create a
        // special-edge cycle.
        use p2p_core::rule::{CoordinationRule, RuleSet};
        use p2p_topology::NodeId;
        let name = |i: u32| NodeId(i).letter();
        let resolve = |s: &str| -> Option<NodeId> { (0..6u32).find(|i| name(*i) == s).map(NodeId) };
        let mut set = RuleSet::new();
        let mut k = 0;
        for i in 0..6u32 {
            for j in 0..6u32 {
                if i == j {
                    continue;
                }
                let dst_f = SchemaFamily::for_node(i);
                let src_f = SchemaFamily::for_node(j);
                for text in dst_f.import_rules(src_f, &name(j), &name(i)) {
                    k += 1;
                    set.add(
                        CoordinationRule::parse(&format!("r{k}"), &text, None, &resolve).unwrap(),
                    )
                    .unwrap();
                }
            }
        }
        assert!(set.len() > 30);
        assert_eq!(set.check_weak_acyclicity(), Ok(()));
    }
}
