//! Data distributions (Section 5): disjoint vs. 50 %-intersection between
//! linked nodes.

use crate::dblp::{DblpGenerator, Publication};
use p2p_topology::{DependencyGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// How base records are spread over the nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// "no intersection between initial data in neighbor nodes" — every node
    /// receives fresh publications.
    Disjoint,
    /// "`percent` % probability of intersection between initial data in
    /// nodes linked by coordination rules; the intersection between data in
    /// other nodes is empty." Each record slot of a node is, with the given
    /// probability, a copy of a record held by an already-populated linked
    /// neighbour (chosen uniformly), otherwise fresh.
    OverlapNeighbors {
        /// Overlap probability in percent (the paper used 50).
        percent: u8,
    },
}

/// Assigns `records_per_node` publications to every node of `graph`
/// (deterministically, given `seed`).
pub fn distribute(
    graph: &DependencyGraph,
    records_per_node: usize,
    distribution: Distribution,
    seed: u64,
) -> BTreeMap<NodeId, Vec<Publication>> {
    let mut gen = DblpGenerator::new(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut out: BTreeMap<NodeId, Vec<Publication>> = BTreeMap::new();

    for node in graph.nodes() {
        // Linked neighbours processed earlier (either edge direction).
        let prior: Vec<NodeId> = graph
            .successors(node)
            .chain(graph.predecessors(node))
            .filter(|n| *n < node)
            .collect();
        let mut records = Vec::with_capacity(records_per_node);
        for _ in 0..records_per_node {
            let overlap = match distribution {
                Distribution::Disjoint => false,
                Distribution::OverlapNeighbors { percent } => {
                    !prior.is_empty() && rng.gen_range(0..100u8) < percent
                }
            };
            if overlap {
                let donor = prior[rng.gen_range(0..prior.len())];
                let donor_records = &out[&donor];
                let copy = donor_records[rng.gen_range(0..donor_records.len())].clone();
                records.push(copy);
            } else {
                records.push(gen.publication());
            }
        }
        out.insert(node, records);
    }
    out
}

/// Fraction (0–1) of records at `a` that also occur at `b` — used to verify
/// the distributions do what the paper describes.
pub fn intersection_ratio(
    assignment: &BTreeMap<NodeId, Vec<Publication>>,
    a: NodeId,
    b: NodeId,
) -> f64 {
    let (Some(ra), Some(rb)) = (assignment.get(&a), assignment.get(&b)) else {
        return 0.0;
    };
    if ra.is_empty() {
        return 0.0;
    }
    let ids: std::collections::BTreeSet<i64> = rb.iter().map(|p| p.id).collect();
    let shared = ra.iter().filter(|p| ids.contains(&p.id)).count();
    shared as f64 / ra.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_topology::Topology;

    fn chain(n: u32) -> DependencyGraph {
        Topology::Chain { n }.generate().graph
    }

    #[test]
    fn disjoint_has_no_intersection() {
        let g = chain(5);
        let asg = distribute(&g, 100, Distribution::Disjoint, 42);
        for i in 0..5u32 {
            for j in 0..5u32 {
                if i != j {
                    assert_eq!(
                        intersection_ratio(&asg, NodeId(i), NodeId(j)),
                        0.0,
                        "{i} vs {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn overlap_hits_linked_pairs_only() {
        let g = chain(5);
        let asg = distribute(&g, 400, Distribution::OverlapNeighbors { percent: 50 }, 42);
        // Linked pair (1,0): roughly half of node 1's records come from 0.
        let linked = intersection_ratio(&asg, NodeId(1), NodeId(0));
        assert!(
            (0.35..=0.65).contains(&linked),
            "linked overlap was {linked}"
        );
        // Unlinked pair (0,3): no overlap by construction? Records can flow
        // transitively (3 copies from 2, 2 copies from 1, 1 copies from 0),
        // so allow a small transitive residue but require it to be far below
        // the direct rate.
        let unlinked = intersection_ratio(&asg, NodeId(3), NodeId(0));
        assert!(unlinked < linked / 2.0, "unlinked {unlinked} vs {linked}");
    }

    #[test]
    fn counts_match_request() {
        let g = chain(4);
        let asg = distribute(&g, 57, Distribution::Disjoint, 1);
        assert_eq!(asg.len(), 4);
        for records in asg.values() {
            assert_eq!(records.len(), 57);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = chain(4);
        let a = distribute(&g, 50, Distribution::OverlapNeighbors { percent: 50 }, 9);
        let b = distribute(&g, 50, Distribution::OverlapNeighbors { percent: 50 }, 9);
        assert_eq!(a, b);
    }
}
