//! Deterministic synthetic publication records.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One bibliographic record — the unit the paper counts ("about 20000
/// records about publications, about 1000 per node").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Publication {
    /// Globally unique id (plays the URI role of shared constants,
    /// Definition 1).
    pub id: i64,
    /// Title.
    pub title: String,
    /// Publication year.
    pub year: i64,
    /// Venue name.
    pub venue: String,
    /// Authors (1–3), first is the "first author".
    pub authors: Vec<String>,
}

const FIRST_NAMES: &[&str] = &[
    "ana",
    "boris",
    "carla",
    "dmitri",
    "elena",
    "franz",
    "gabriella",
    "henrik",
    "ilya",
    "jan",
    "katja",
    "luigi",
    "marta",
    "nikos",
    "olga",
    "paolo",
    "quentin",
    "rosa",
    "stefan",
    "tanya",
    "umberto",
    "vera",
    "walter",
    "xenia",
    "yannis",
    "zoe",
];

const LAST_NAMES: &[&str] = &[
    "albano",
    "bernstein",
    "calvanese",
    "degiacomo",
    "eiter",
    "franconi",
    "ghidini",
    "halevy",
    "ives",
    "jarke",
    "kuper",
    "lenzerini",
    "mylopoulos",
    "nejdl",
    "ooi",
    "popa",
    "quass",
    "rosati",
    "serafini",
    "tatarinov",
    "ullman",
    "vianu",
    "widom",
    "xu",
    "yang",
    "zaihrayeu",
];

const VENUES: &[&str] = &[
    "vldb", "sigmod", "icde", "edbt", "icdt", "pods", "webdb", "cidr", "dbisp2p", "p2pdb",
    "semweb", "caise",
];

const TITLE_WORDS: &[&str] = &[
    "peer",
    "data",
    "query",
    "schema",
    "update",
    "exchange",
    "semantic",
    "distributed",
    "mediation",
    "integration",
    "coordination",
    "network",
    "logic",
    "answering",
    "views",
    "consistency",
    "discovery",
    "propagation",
    "fixpoint",
    "relational",
];

/// Seeded generator of [`Publication`]s.
#[derive(Debug)]
pub struct DblpGenerator {
    rng: StdRng,
    next_id: i64,
}

impl DblpGenerator {
    /// Creates a generator; equal seeds produce identical streams.
    pub fn new(seed: u64) -> Self {
        DblpGenerator {
            rng: StdRng::seed_from_u64(seed),
            next_id: 1,
        }
    }

    /// Generates one publication.
    pub fn publication(&mut self) -> Publication {
        let id = self.next_id;
        self.next_id += 1;
        let year = 1994 + self.rng.gen_range(0..11i64); // 1994–2004
        let venue = VENUES[self.rng.gen_range(0..VENUES.len())].to_string();
        let title_len = self.rng.gen_range(3..6usize);
        let mut title = String::new();
        for i in 0..title_len {
            if i > 0 {
                title.push(' ');
            }
            title.push_str(TITLE_WORDS[self.rng.gen_range(0..TITLE_WORDS.len())]);
        }
        let author_count = self.rng.gen_range(1..4usize);
        let mut authors = Vec::with_capacity(author_count);
        for _ in 0..author_count {
            let name = format!(
                "{} {}",
                FIRST_NAMES[self.rng.gen_range(0..FIRST_NAMES.len())],
                LAST_NAMES[self.rng.gen_range(0..LAST_NAMES.len())]
            );
            if !authors.contains(&name) {
                authors.push(name);
            }
        }
        Publication {
            id,
            title,
            year,
            venue,
            authors,
        }
    }

    /// Generates a batch.
    pub fn batch(&mut self, n: usize) -> Vec<Publication> {
        (0..n).map(|_| self.publication()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = DblpGenerator::new(7).batch(50);
        let b = DblpGenerator::new(7).batch(50);
        let c = DblpGenerator::new(8).batch(50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let pubs = DblpGenerator::new(1).batch(100);
        for (i, p) in pubs.iter().enumerate() {
            assert_eq!(p.id, i as i64 + 1);
        }
    }

    #[test]
    fn fields_are_plausible() {
        for p in DblpGenerator::new(3).batch(200) {
            assert!((1994..=2004).contains(&p.year));
            assert!(!p.title.is_empty());
            assert!(!p.venue.is_empty());
            assert!(!p.authors.is_empty() && p.authors.len() <= 3);
            // Authors deduplicated.
            let mut names = p.authors.clone();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), p.authors.len());
        }
    }
}
