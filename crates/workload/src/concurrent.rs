//! Concurrent-writers scenario generation.
//!
//! The paper's setting is a P2P network where *any* node may initiate data
//! sharing and updates; robustness work on dynamic P2P networks treats many
//! concurrent initiators as the baseline scenario. This module builds that
//! scenario: a standard workload system plus `writers` designated nodes,
//! each holding a batch of **fresh** records (not part of the base
//! distribution) to be inserted right before its update session starts.
//!
//! A driver runs the scenario two ways:
//!
//! * **serial** — for each writer in turn: insert its delta, run one global
//!   session rooted at it, wait for the fix-point;
//! * **concurrent** — insert every delta, then launch all sessions at once
//!   (`P2PSystem::run_updates`) and let them interleave.
//!
//! Both must reach the same final global database (modulo null renaming) —
//! the serial-equivalence guarantee of the concurrent control plane — while
//! the concurrent run overlaps the sessions' wall-clock.

use crate::build::{build_system, WorkloadConfig};
use crate::dblp::DblpGenerator;
use crate::schemas::SchemaFamily;
use p2p_core::error::CoreResult;
use p2p_core::system::P2PSystemBuilder;
use p2p_relational::Val;
use p2p_topology::NodeId;

/// Configuration of a concurrent-writers run.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentConfig {
    /// The base workload (topology, per-node records, distribution, seed).
    pub base: WorkloadConfig,
    /// Number of concurrently initiating writer nodes.
    pub writers: usize,
    /// Fresh records each writer contributes just before its session.
    pub records_per_writer: usize,
}

/// One writer's pending contribution: the node that initiates a session and
/// the base tuples to insert at it immediately beforehand.
#[derive(Debug, Clone)]
pub struct WriterDelta {
    /// The initiating node (the session's root).
    pub node: NodeId,
    /// `(relation, tuple)` pairs to insert at `node`.
    pub tuples: Vec<(&'static str, Vec<Val>)>,
}

/// A ready-to-run concurrent-writers scenario.
pub struct ConcurrentScenario {
    /// The built-up system builder (configuration still tweakable).
    pub builder: P2PSystemBuilder,
    /// One delta per writer, in session-launch order.
    pub deltas: Vec<WriterDelta>,
}

impl ConcurrentScenario {
    /// The writer roots, in launch order.
    pub fn roots(&self) -> Vec<NodeId> {
        self.deltas.iter().map(|d| d.node).collect()
    }
}

/// Picks `writers` roster positions spread evenly across `node_count`
/// nodes — deterministic, so serial and concurrent drivers agree on the
/// roots. Returns indices so callers with non-contiguous node ids (e.g.
/// the CLI's network files) can map into their own roster.
pub fn pick_writer_indices(node_count: usize, writers: usize) -> Vec<usize> {
    let writers = writers.clamp(1, node_count.max(1));
    let step = node_count as f64 / writers as f64;
    (0..writers).map(|i| (i as f64 * step) as usize).collect()
}

/// [`pick_writer_indices`] over the contiguous `NodeId(0..n)` roster the
/// workload generators produce.
pub fn pick_writers(node_count: usize, writers: usize) -> Vec<NodeId> {
    pick_writer_indices(node_count, writers)
        .into_iter()
        .map(|i| NodeId(i as u32))
        .collect()
}

/// Builds the scenario: the base workload plus per-writer fresh-record
/// deltas, generated from a seed disjoint from the base distribution's so
/// writer data never collides with pre-seeded records.
pub fn concurrent_scenario(cfg: &ConcurrentConfig) -> CoreResult<ConcurrentScenario> {
    let builder = build_system(&cfg.base)?;
    let generated = cfg.base.topology.generate();
    let nodes: Vec<NodeId> = generated.graph.nodes().collect();
    let roots = pick_writers(nodes.len(), cfg.writers);

    let mut deltas = Vec::with_capacity(roots.len());
    for (i, &node) in roots.iter().enumerate() {
        // A generator seeded per writer, offset far from the base seed.
        let mut generator = DblpGenerator::new(
            cfg.base
                .seed
                .wrapping_add(0x5E55_1000)
                .wrapping_add(i as u64),
        );
        let family = SchemaFamily::for_node(node.0);
        let mut tuples = Vec::new();
        for p in generator.batch(cfg.records_per_writer) {
            tuples.extend(family.tuples_for(&p));
        }
        deltas.push(WriterDelta { node, tuples });
    }
    Ok(ConcurrentScenario { builder, deltas })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribute::Distribution;
    use p2p_topology::Topology;

    fn cfg() -> ConcurrentConfig {
        ConcurrentConfig {
            base: WorkloadConfig {
                topology: Topology::Ring { n: 8 },
                records_per_node: 10,
                distribution: Distribution::Disjoint,
                seed: 7,
            },
            writers: 4,
            records_per_writer: 5,
        }
    }

    #[test]
    fn writers_are_spread_and_deterministic() {
        assert_eq!(
            pick_writers(8, 4),
            vec![NodeId(0), NodeId(2), NodeId(4), NodeId(6)]
        );
        assert_eq!(pick_writers(3, 9), vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(pick_writers(5, 1), vec![NodeId(0)]);
    }

    #[test]
    fn scenario_has_one_delta_per_writer_with_fresh_tuples() {
        let s1 = concurrent_scenario(&cfg()).unwrap();
        let s2 = concurrent_scenario(&cfg()).unwrap();
        assert_eq!(s1.roots(), vec![NodeId(0), NodeId(2), NodeId(4), NodeId(6)]);
        assert_eq!(s1.deltas.len(), 4);
        for (a, b) in s1.deltas.iter().zip(&s2.deltas) {
            assert!(!a.tuples.is_empty());
            assert_eq!(a.tuples, b.tuples, "scenario generation is deterministic");
        }
        // Different writers contribute different records.
        assert_ne!(s1.deltas[0].tuples, s1.deltas[1].tuples);
    }

    #[test]
    fn serial_equals_concurrent_on_the_scenario() {
        // The generator's own smoke test of the equivalence contract.
        let run_concurrent = || {
            let s = concurrent_scenario(&cfg()).unwrap();
            let roots = s.roots();
            let mut sys = s.builder.build().unwrap();
            for d in &s.deltas {
                for (rel, vals) in &d.tuples {
                    sys.insert(d.node, rel, vals.clone()).unwrap();
                }
            }
            let reports = sys.run_updates(&roots);
            assert!(reports.iter().all(|r| r.all_closed));
            sys.snapshot()
        };
        let run_serial = || {
            let s = concurrent_scenario(&cfg()).unwrap();
            let mut sys = s.builder.build().unwrap();
            for d in &s.deltas {
                for (rel, vals) in &d.tuples {
                    sys.insert(d.node, rel, vals.clone()).unwrap();
                }
                let report = sys.run_update_from(d.node);
                assert!(report.all_closed);
            }
            sys.snapshot()
        };
        assert!(
            run_concurrent().equivalent(&run_serial()),
            "interleaved sessions must reach the serial fix-point"
        );
    }
}
