//! Assembling a full experimental system: topology × schemas × rules × data.

use crate::distribute::{distribute, Distribution};
use crate::schemas::SchemaFamily;
use p2p_core::error::CoreResult;
use p2p_core::system::P2PSystemBuilder;
use p2p_topology::Topology;

/// Configuration of one experimental run, mirroring the paper's Section 5
/// setup.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Network shape (tree / layered DAG / clique / …).
    pub topology: Topology,
    /// Base records per node (the paper used ~1000).
    pub records_per_node: usize,
    /// Data distribution.
    pub distribution: Distribution,
    /// Master seed (topology data, record content, overlap choices).
    pub seed: u64,
}

impl WorkloadConfig {
    /// A small default useful in tests: 3-level binary tree, 50 records,
    /// disjoint data.
    pub fn small() -> Self {
        WorkloadConfig {
            topology: Topology::Tree {
                branching: 2,
                depth: 2,
            },
            records_per_node: 50,
            distribution: Distribution::Disjoint,
            seed: 42,
        }
    }
}

/// Builds a ready-to-run system: nodes named `A`, `B`, … with round-robin
/// schema families, one batch of coordination rules per dependency edge
/// (translating the body node's schema into the head node's), and the
/// requested data distribution. The returned builder still accepts
/// configuration tweaks before `build()`.
pub fn build_system(cfg: &WorkloadConfig) -> CoreResult<P2PSystemBuilder> {
    let generated = cfg.topology.generate();
    let mut b = P2PSystemBuilder::new();

    // Nodes.
    for node in generated.graph.nodes() {
        let family = SchemaFamily::for_node(node.0);
        b.add_node_with_schema(node.0, family.schema_text())?;
    }

    // Rules: one template batch per dependency edge (head imports from body).
    let mut k = 0usize;
    for (head, body) in generated.graph.edges() {
        let head_family = SchemaFamily::for_node(head.0);
        let body_family = SchemaFamily::for_node(body.0);
        for text in head_family.import_rules(body_family, &body.letter(), &head.letter()) {
            k += 1;
            b.add_rule(&format!("r{k}"), &text)?;
        }
    }

    // Data.
    let assignment = distribute(
        &generated.graph,
        cfg.records_per_node,
        cfg.distribution,
        cfg.seed,
    );
    for (node, records) in assignment {
        let family = SchemaFamily::for_node(node.0);
        for p in records {
            for (rel, vals) in family.tuples_for(&p) {
                // Overlapping records may repeat: duplicate inserts are
                // deduplicated by the relation, which is exactly the
                // "intersection" the paper wants.
                b.insert(node.0, rel, vals)?;
            }
        }
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_topology::NodeId;

    #[test]
    fn small_tree_builds_and_converges() {
        let mut b = build_system(&WorkloadConfig::small()).unwrap();
        b.config_mut().max_events = 2_000_000;
        let mut sys = b.build().unwrap();
        let report = sys.run_update();
        assert!(report.outcome.quiescent);
        assert!(report.all_closed);
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        // The root (S1 family) must have imported from its children.
        let root = sys.database(NodeId(0)).unwrap();
        let own = 50; // its own pubs
        assert!(
            root.relation("pub").unwrap().len() > own,
            "root should hold imported publications"
        );
    }

    #[test]
    fn layered_dag_converges_to_oracle() {
        let cfg = WorkloadConfig {
            topology: Topology::LayeredDag {
                layers: 3,
                width: 2,
                fanout: 2,
            },
            records_per_node: 20,
            distribution: Distribution::Disjoint,
            seed: 7,
        };
        let mut sys = build_system(&cfg).unwrap().build().unwrap();
        let report = sys.run_update();
        assert!(report.all_closed);
        assert!(
            sys.snapshot().equivalent(&sys.oracle().unwrap()),
            "workload system must match the centralized fix-point"
        );
    }

    #[test]
    fn clique_with_overlap_converges() {
        let cfg = WorkloadConfig {
            topology: Topology::Clique { n: 3 },
            records_per_node: 15,
            distribution: Distribution::OverlapNeighbors { percent: 50 },
            seed: 3,
        };
        let mut sys = build_system(&cfg).unwrap().build().unwrap();
        let report = sys.run_update();
        assert!(report.outcome.quiescent, "clique must still quiesce");
        assert!(report.all_closed);
        assert!(report.errors.is_empty(), "{:?}", report.errors);
    }

    #[test]
    fn overlap_reduces_fresh_insertions() {
        let base = WorkloadConfig {
            topology: Topology::Chain { n: 4 },
            records_per_node: 60,
            distribution: Distribution::Disjoint,
            seed: 11,
        };
        let disjoint_tuples = {
            let mut sys = build_system(&base).unwrap().build().unwrap();
            sys.run_update();
            sys.snapshot().total_tuples()
        };
        let overlap_tuples = {
            let cfg = WorkloadConfig {
                distribution: Distribution::OverlapNeighbors { percent: 50 },
                ..base
            };
            let mut sys = build_system(&cfg).unwrap().build().unwrap();
            sys.run_update();
            sys.snapshot().total_tuples()
        };
        assert!(
            overlap_tuples < disjoint_tuples,
            "shared records should deduplicate: {overlap_tuples} vs {disjoint_tuples}"
        );
    }
}
