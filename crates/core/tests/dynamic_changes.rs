//! Dynamic-network tests (Section 4): termination under finite change
//! (Theorem 2), the Definition 9 soundness/completeness envelope, and
//! separated-subset closure (Theorem 3).

use p2p_core::dynamic::{ChangeOp, ChangeScript};
use p2p_core::system::P2PSystemBuilder;
use p2p_net::SimTime;
use p2p_relational::hom::contained_modulo_nulls;
use p2p_relational::Value;
use p2p_topology::NodeId;

fn three_node_builder() -> P2PSystemBuilder {
    let mut b = P2PSystemBuilder::new();
    b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
    b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
    b.add_node_with_schema(2, "c(x: int, y: int).").unwrap();
    b.add_rule("r0", "B:b(X,Y) => A:a(X,Y)").unwrap();
    b.insert(1, "b", vec![Value::Int(1), Value::Int(2)])
        .unwrap();
    b.insert(2, "c", vec![Value::Int(7), Value::Int(8)])
        .unwrap();
    b.insert(2, "c", vec![Value::Int(8), Value::Int(9)])
        .unwrap();
    b
}

#[test]
fn add_link_mid_run_terminates_and_imports() {
    // Theorem 2: finite change ⇒ termination; the added rule C→A must pull
    // C's data into A even though it appears mid-update.
    let mut sys = three_node_builder().build().unwrap();
    let mut script = ChangeScript::new();
    let add = sys.make_add_link("rx", "C:c(X,Y) => A:a(X,Y)").unwrap();
    script.push(SimTime::from_millis(3), add);

    let report = sys.run_update_with_script(&script);
    assert!(report.outcome.quiescent, "Theorem 2: must terminate");
    assert!(report.all_closed, "must re-close after the change");
    assert!(report.errors.is_empty(), "{:?}", report.errors);

    let a = sys.database(NodeId(0)).unwrap();
    // b(1,2) via r0 plus c(7,8), c(8,9) via rx.
    assert_eq!(a.relation("a").unwrap().len(), 3);
}

#[test]
fn definition9_sandwich_holds() {
    // Run with an add and a delete mid-flight; the result must contain the
    // lower fix-point (deletes first, no adds) and be contained in the upper
    // fix-point (all adds, no deletes).
    let mut sys = three_node_builder().build().unwrap();
    let mut script = ChangeScript::new();
    let add = sys.make_add_link("rx", "C:c(X,Y) => A:a(X,Y)").unwrap();
    script.push(SimTime::from_millis(2), add.clone());
    let del = sys.make_delete_link("r0").unwrap();
    script.push(SimTime::from_millis(4), del);

    let report = sys.run_update_with_script(&script);
    assert!(report.outcome.quiescent);
    assert!(report.all_closed);

    // Build the Definition 9 reference rule sets.
    let upper_rules = p2p_core::dynamic::upper_reference(sys.rules(), &script);
    let lower_rules = p2p_core::dynamic::lower_reference(sys.rules(), &script);
    let upper = sys.oracle_with(&upper_rules).unwrap();
    let lower = sys.oracle_with(&lower_rules).unwrap();

    let result = sys.snapshot();
    for (node, db) in &result.0 {
        let up = upper.node(*node).unwrap();
        let low = lower.node(*node).unwrap();
        assert!(
            contained_modulo_nulls(db, up),
            "soundness violated at {node}"
        );
        assert!(
            contained_modulo_nulls(low, db),
            "completeness violated at {node}"
        );
    }
}

#[test]
fn delete_link_keeps_already_imported_data() {
    // Definition 9 permits keeping data imported before the delete; our
    // implementation never retracts. Delete r0 *after* the data flowed.
    let mut sys = three_node_builder().build().unwrap();
    let first = sys.run_update();
    assert!(first.all_closed);
    assert_eq!(
        sys.database(NodeId(0))
            .unwrap()
            .relation("a")
            .unwrap()
            .len(),
        1
    );

    let mut script = ChangeScript::new();
    let del = sys.make_delete_link("r0").unwrap();
    script.push(SimTime::from_millis(1), del);
    let report = sys.run_update_with_script(&script);
    assert!(report.outcome.quiescent);
    assert!(report.all_closed);
    // Data survives the deletion.
    assert_eq!(
        sys.database(NodeId(0))
            .unwrap()
            .relation("a")
            .unwrap()
            .len(),
        1
    );
}

#[test]
fn repeated_changes_terminate() {
    // A longer finite script: several adds and deletes interleaved.
    let mut sys = three_node_builder().build().unwrap();
    let mut script = ChangeScript::new();
    let add1 = sys.make_add_link("rx", "C:c(X,Y) => A:a(X,Y)").unwrap();
    let add2 = sys.make_add_link("ry", "C:c(X,Y) => B:b(X,Y)").unwrap();
    script.push(SimTime::from_millis(2), add1.clone());
    script.push(SimTime::from_millis(4), add2);
    if let ChangeOp::AddLink { rule } = &add1 {
        script.push(
            SimTime::from_millis(6),
            ChangeOp::DeleteLink {
                rule: rule.id,
                head: rule.head_node,
            },
        );
    }
    let report = sys.run_update_with_script(&script);
    assert!(report.outcome.quiescent, "finite change must terminate");
    assert!(report.all_closed);
    // ry imported C's tuples into B, and r0 then relayed them to A.
    let b = sys.database(NodeId(1)).unwrap();
    assert_eq!(b.relation("b").unwrap().len(), 3);
    let a = sys.database(NodeId(0)).unwrap();
    assert_eq!(a.relation("a").unwrap().len(), 3);
}

#[test]
fn separated_component_closes_despite_external_churn() {
    // Theorem 3: {A, B} is separated from {C, D}; churn confined to the
    // C/D side must not keep A/B from closing with sound & complete data.
    let mut b = P2PSystemBuilder::new();
    b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
    b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
    b.add_node_with_schema(2, "c(x: int, y: int).").unwrap();
    b.add_node_with_schema(3, "d(x: int, y: int).").unwrap();
    b.add_rule("rab", "B:b(X,Y) => A:a(X,Y)").unwrap();
    b.add_rule("rcd", "D:d(X,Y) => C:c(X,Y)").unwrap();
    b.insert(1, "b", vec![Value::Int(1), Value::Int(2)])
        .unwrap();
    b.insert(3, "d", vec![Value::Int(5), Value::Int(6)])
        .unwrap();
    let mut sys = b.build().unwrap();

    // Verify the Theorem 3 precondition with the topology analyzer.
    let graph = sys.rules().dependency_graph();
    let a_side: std::collections::BTreeSet<NodeId> = [NodeId(0), NodeId(1)].into();
    let mut script = ChangeScript::new();
    let mut graph_changes = Vec::new();
    // Churn: repeatedly add/delete C→D rules.
    for i in 0..5 {
        let add = sys
            .make_add_link(&format!("churn{i}"), "D:d(X,Y) => C:c(Y,X)")
            .unwrap();
        if let ChangeOp::AddLink { rule } = &add {
            graph_changes.push(p2p_topology::GraphChange::AddEdge {
                head: rule.head_node,
                body: rule.parts[0].node,
            });
            script.push(SimTime::from_millis(2 + 2 * i), add.clone());
            script.push(
                SimTime::from_millis(3 + 2 * i),
                ChangeOp::DeleteLink {
                    rule: rule.id,
                    head: rule.head_node,
                },
            );
            graph_changes.push(p2p_topology::GraphChange::RemoveEdge {
                head: NodeId(2),
                body: NodeId(3),
            });
        }
    }
    assert!(p2p_topology::is_separated_under_change(
        &graph,
        &a_side,
        &graph_changes
    ));

    let report = sys.run_update_with_script(&script);
    assert!(report.outcome.quiescent);
    assert!(sys.closed(NodeId(0)), "A must close (Theorem 3)");
    assert!(sys.closed(NodeId(1)), "B must close (Theorem 3)");
    // And its data is the static fix-point of its own rules.
    assert_eq!(
        sys.database(NodeId(0))
            .unwrap()
            .relation("a")
            .unwrap()
            .len(),
        1
    );
}

#[test]
fn change_long_after_fixpoint_rewakes_session_and_recloses() {
    // The change lands long after the session quiesced, broadcast its
    // fix-point and retired all per-session state. The super-peer must
    // re-join its own session, the head re-wakes via the routed `addRule`,
    // the new rule's data flows, and the re-quiesce broadcast (strictly
    // newer generation) retires everything again — same run, no new epoch.
    let latencies = [
        None, // constant latency: deterministic post-retirement delivery
        Some(p2p_core::system::LatencySpec::Uniform {
            min: SimTime::from_micros(200),
            max: SimTime::from_millis(20),
            seed: 21,
        }),
    ];
    for latency in latencies {
        let mut b = three_node_builder();
        if let Some(spec) = latency {
            b.set_latency(spec);
        }
        let mut sys = b.build().unwrap();
        let mut script = ChangeScript::new();
        let add = sys.make_add_link("rx", "C:c(X,Y) => A:a(X,Y)").unwrap();
        // Far beyond any quiescence time of this tiny network.
        script.push(SimTime::from_millis(2_000), add);
        let report = sys.run_update_with_script(&script);
        assert!(report.outcome.quiescent);
        assert!(report.all_closed, "re-woken session must re-close");
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(
            sys.database(NodeId(0))
                .unwrap()
                .relation("a")
                .unwrap()
                .len(),
            3,
            "the re-woken session must import the new rule's data"
        );
        for (id, p) in sys.peers() {
            assert_eq!(p.session_table_len(), 0, "peer {id} leaked after re-wake");
        }
    }
}

#[test]
fn plan_cache_survives_add_and_delete_rule() {
    // The compiled-plan cache must be invalidated by `addRule`/`deleteRule`
    // mid-run: a cached run and a cache-less (+ index-less) ablation run of
    // the same change script must reach equivalent fix-points, and the
    // cached run must actually have served evaluations from the cache.
    let run = |plan_cache: bool| {
        let mut b = three_node_builder();
        b.config_mut().plan_cache = plan_cache;
        b.config_mut().persistent_indexes = plan_cache;
        let mut sys = b.build().unwrap();
        let mut script = ChangeScript::new();
        // C→B grows B's data mid-session, so B re-answers A's standing
        // subscription for r0 — the second evaluation of the same fragment
        // that a warm plan cache serves without recompiling.
        let add = sys.make_add_link("ry", "C:c(X,Y) => B:b(X,Y)").unwrap();
        script.push(SimTime::from_millis(2), add);
        let del = sys.make_delete_link("r0").unwrap();
        script.push(SimTime::from_millis(20), del);
        let report = sys.run_update_with_script(&script);
        assert!(report.outcome.quiescent);
        assert!(report.all_closed);
        let stats = sys.sum_stats();
        (sys.snapshot(), stats)
    };

    let (cached_db, cached_stats) = run(true);
    let (legacy_db, legacy_stats) = run(false);
    assert!(
        cached_db.equivalent(&legacy_db),
        "cached and legacy fix-points diverged"
    );
    assert!(
        cached_stats.plan_cache_hits > 0,
        "a rule evaluated more than once must hit the cache"
    );
    assert_eq!(
        legacy_stats.plan_cache_hits, 0,
        "ablation run must not touch the cache"
    );
    // Both evaluated the same fragments the same number of times — the
    // cache changes compilation work, not the evaluation schedule.
    assert_eq!(
        cached_stats.local_evaluations,
        legacy_stats.local_evaluations
    );
}

#[test]
fn change_after_closure_starts_new_epoch() {
    // Run to closure, then apply a change in a *second* session: the system
    // must converge again and incorporate the new rule.
    let mut sys = three_node_builder().build().unwrap();
    let r1 = sys.run_update();
    assert!(r1.all_closed);

    let mut script = ChangeScript::new();
    let add = sys.make_add_link("rx", "C:c(X,Y) => A:a(X,Y)").unwrap();
    script.push(SimTime::from_millis(1), add);
    let r2 = sys.run_update_with_script(&script);
    assert!(r2.outcome.quiescent);
    assert!(r2.all_closed);
    assert_eq!(
        sys.database(NodeId(0))
            .unwrap()
            .relation("a")
            .unwrap()
            .len(),
        3
    );
}
