//! Query-dependent updates (Section 5): a scoped refresh rooted at one node
//! touches exactly its dependency-reachable region.

use p2p_core::system::P2PSystemBuilder;
use p2p_relational::Value;
use p2p_topology::NodeId;

/// Chain A ← B ← C (A imports from B, B from C) plus an unrelated pair
/// D ← E; data at C and E.
fn builder() -> P2PSystemBuilder {
    let mut b = P2PSystemBuilder::new();
    b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
    b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
    b.add_node_with_schema(2, "c(x: int, y: int).").unwrap();
    b.add_node_with_schema(3, "d(x: int, y: int).").unwrap();
    b.add_node_with_schema(4, "e(x: int, y: int).").unwrap();
    b.add_rule("r1", "B:b(X,Y) => A:a(X,Y)").unwrap();
    b.add_rule("r2", "C:c(X,Y) => B:b(X,Y)").unwrap();
    b.add_rule("r3", "E:e(X,Y) => D:d(X,Y)").unwrap();
    b.insert(2, "c", vec![Value::Int(1), Value::Int(2)])
        .unwrap();
    b.insert(4, "e", vec![Value::Int(7), Value::Int(8)])
        .unwrap();
    b
}

#[test]
fn scoped_update_fills_only_the_reachable_region() {
    let mut sys = builder().build().unwrap();
    let report = sys.run_scoped_update(NodeId(0));
    assert!(report.outcome.quiescent);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    // A's chain is refreshed…
    assert_eq!(
        sys.database(NodeId(0))
            .unwrap()
            .relation("a")
            .unwrap()
            .len(),
        1
    );
    assert_eq!(
        sys.database(NodeId(1))
            .unwrap()
            .relation("b")
            .unwrap()
            .len(),
        1
    );
    // …the unrelated D ← E pair is untouched.
    assert_eq!(
        sys.database(NodeId(3))
            .unwrap()
            .relation("d")
            .unwrap()
            .len(),
        0
    );
    // The root closed (its fix-point is reached); D did not participate.
    assert!(sys.closed(NodeId(0)));
    assert!(!sys.closed(NodeId(3)));
}

#[test]
fn scoped_update_from_mid_chain() {
    let mut sys = builder().build().unwrap();
    sys.run_scoped_update(NodeId(1));
    // B refreshed from C; A untouched (nothing depends *from* B on A).
    assert_eq!(
        sys.database(NodeId(1))
            .unwrap()
            .relation("b")
            .unwrap()
            .len(),
        1
    );
    assert_eq!(
        sys.database(NodeId(0))
            .unwrap()
            .relation("a")
            .unwrap()
            .len(),
        0
    );
}

#[test]
fn distributed_query_materialises_then_answers() {
    let mut sys = builder().build().unwrap();
    let before = sys.net_stats().total_messages;
    let ans = sys
        .distributed_query(NodeId(0), "q(X, Y) :- a(X, Y)")
        .unwrap();
    assert_eq!(ans.len(), 1);
    assert!(
        sys.net_stats().total_messages > before,
        "distributed query must have fetched data"
    );
    // A second identical query needs no new data, but the scoped refresh
    // still runs (cheaply: everything already present, answers are empty
    // deltas).
    let ans2 = sys
        .distributed_query(NodeId(0), "q(X, Y) :- a(X, Y)")
        .unwrap();
    assert_eq!(ans2, ans);
}

#[test]
fn scoped_messages_cheaper_than_global() {
    let scoped_msgs = {
        let mut sys = builder().build().unwrap();
        sys.run_scoped_update(NodeId(0)).messages
    };
    let global_msgs = {
        let mut sys = builder().build().unwrap();
        sys.run_update().messages
    };
    assert!(
        scoped_msgs < global_msgs,
        "scoped ({scoped_msgs}) must beat global ({global_msgs})"
    );
}

#[test]
fn scoped_update_on_cycle_terminates() {
    let mut b = P2PSystemBuilder::new();
    b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
    b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
    b.add_rule("r1", "B:b(X,Y) => A:a(X,Y)").unwrap();
    b.add_rule("r2", "A:a(X,Y) => B:b(Y,X)").unwrap();
    b.insert(1, "b", vec![Value::Int(1), Value::Int(2)])
        .unwrap();
    let mut sys = b.build().unwrap();
    let report = sys.run_scoped_update(NodeId(0));
    assert!(report.outcome.quiescent);
    assert!(sys.closed(NodeId(0)));
    // The cycle saturates: a(1,2), a(2,1); b(1,2), b(2,1).
    assert_eq!(
        sys.database(NodeId(0))
            .unwrap()
            .relation("a")
            .unwrap()
            .len(),
        2
    );
}
