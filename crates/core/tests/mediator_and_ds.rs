//! Mediator nodes (the paper's Figure 2: "local database may be absent …
//! a given node acts as a mediator for propagating of requests and data")
//! and Dijkstra–Scholten message accounting.

use p2p_core::system::P2PSystemBuilder;
use p2p_relational::Value;
use p2p_topology::NodeId;

#[test]
fn mediator_relays_data_it_never_owned() {
    // A ← M ← C: M declares a schema (DBS "must always be specified in
    // order to allow a node to participate") but holds no base data; it
    // imports from C and relays to A.
    let mut b = P2PSystemBuilder::new();
    b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
    b.add_node_with_schema(1, "m(x: int, y: int).").unwrap(); // mediator
    b.add_node_with_schema(2, "c(x: int, y: int).").unwrap();
    b.add_rule("rm", "C:c(X,Y) => B:m(X,Y)").unwrap();
    b.add_rule("ra", "B:m(X,Y) => A:a(X,Y)").unwrap();
    for i in 0..12i64 {
        b.insert(2, "c", vec![Value::Int(i), Value::Int(2 * i)])
            .unwrap();
    }
    let mut sys = b.build().unwrap();
    let report = sys.run_update();
    assert!(report.all_closed);
    assert_eq!(
        sys.database(NodeId(0))
            .unwrap()
            .relation("a")
            .unwrap()
            .len(),
        12,
        "data must traverse the mediator"
    );
    // The mediator's cache holds the relayed extension.
    assert_eq!(
        sys.database(NodeId(1))
            .unwrap()
            .relation("m")
            .unwrap()
            .len(),
        12
    );
}

#[test]
fn ds_acks_match_basic_messages_exactly() {
    // Dijkstra–Scholten: every basic message is acknowledged exactly once.
    let mut b = P2PSystemBuilder::new();
    b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
    b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
    b.add_node_with_schema(2, "c(x: int, y: int).").unwrap();
    b.add_rule("r1", "B:b(X,Y) => A:a(X,Y)").unwrap();
    b.add_rule("r2", "C:c(X,Y) => B:b(X,Y)").unwrap();
    b.insert(2, "c", vec![Value::Int(1), Value::Int(2)])
        .unwrap();
    let mut sys = b.build().unwrap();
    let report = sys.run_update();
    assert!(report.all_closed);

    let stats = sys.net_stats();
    let basic_kinds = [
        "UpdateFlood",
        "Query",
        "Answer",
        "Unsubscribe",
        "addRule",
        "deleteRule",
    ];
    let basics: u64 = basic_kinds.iter().map(|k| stats.sent_of_kind(k)).sum();
    let acks = stats.sent_of_kind("Ack");
    assert_eq!(
        acks, basics,
        "DS must ack each basic message exactly once (basics={basics}, acks={acks})"
    );
    // And the fix-point broadcast went to every non-root node exactly once.
    assert_eq!(stats.sent_of_kind("Fixpoint"), 2);
}

#[test]
fn data_plane_message_counts_are_explainable() {
    // Chain A←B←C with one tuple: data-plane traffic is
    //   4 UpdateFlood — the super-peer reaches B (pipe) and C (roster
    //     backstop), then B and C each forward once to the other pipe end;
    //   2 Query (A→B, B→C)
    //   initial Answers (B→A empty, C→B with the tuple)
    //   delta Answers as data and completeness propagate.
    let mut b = P2PSystemBuilder::new();
    b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
    b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
    b.add_node_with_schema(2, "c(x: int, y: int).").unwrap();
    b.add_rule("r1", "B:b(X,Y) => A:a(X,Y)").unwrap();
    b.add_rule("r2", "C:c(X,Y) => B:b(X,Y)").unwrap();
    b.insert(2, "c", vec![Value::Int(1), Value::Int(2)])
        .unwrap();
    let mut sys = b.build().unwrap();
    sys.run_update();
    let stats = sys.net_stats();
    assert_eq!(stats.sent_of_kind("Query"), 2);
    assert_eq!(stats.sent_of_kind("UpdateFlood"), 4);
    // B answers A twice (empty, then the arrived tuple with completeness),
    // C answers B once — plus at most one completeness-only repeat each.
    let answers = stats.sent_of_kind("Answer");
    assert!((3..=5).contains(&answers), "answers={answers}");
}
