//! End-to-end tests on the paper's Section 2 running example — five nodes
//! A–E, rules r1–r7, with the B↔C and A→B→C→A dependency cycles that make
//! fix-point detection non-trivial.

use p2p_core::config::UpdateMode;
use p2p_core::system::P2PSystemBuilder;
use p2p_relational::Value;
use p2p_topology::paths::format_path;
use p2p_topology::NodeId;

/// Builds the example system with a seed chain in E.
fn example_builder(seed: &[(i64, i64)]) -> P2PSystemBuilder {
    let mut b = P2PSystemBuilder::new();
    b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
    b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
    b.add_node_with_schema(2, "c(x: int, y: int). f(x: int).")
        .unwrap();
    b.add_node_with_schema(3, "d(x: int, y: int).").unwrap();
    b.add_node_with_schema(4, "e(x: int, y: int).").unwrap();
    b.add_rule("r1", "E:e(X,Y) => B:b(X,Y)").unwrap();
    b.add_rule("r2", "B:b(X,Y), B:b(Y,Z) => C:c(X,Z)").unwrap();
    b.add_rule("r3", "C:c(X,Y), C:c(Y,Z) => B:b(X,Z)").unwrap();
    b.add_rule("r4", "B:b(X,Y), B:b(X,Z), X != Z => A:a(X,Y)")
        .unwrap();
    b.add_rule("r5", "A:a(X,Y) => C:f(X)").unwrap();
    b.add_rule("r6", "A:a(X,Y) => D:d(Y,X)").unwrap();
    b.add_rule("r7", "D:d(X,Y), D:d(Y,Z) => C:c(X,Y)").unwrap();
    for &(x, y) in seed {
        b.insert(4, "e", vec![Value::Int(x), Value::Int(y)])
            .unwrap();
    }
    b
}

#[test]
fn eager_reaches_the_global_fixpoint() {
    let mut sys = example_builder(&[(1, 2), (2, 3), (3, 1)]).build().unwrap();
    let report = sys.run_update();
    assert!(report.outcome.quiescent, "must quiesce");
    assert!(report.all_closed, "every node must close");
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    let oracle = sys.oracle().unwrap();
    assert!(
        sys.snapshot().equivalent(&oracle),
        "distributed result must equal the centralized fix-point"
    );
    // The cycle means B and C cannot close via rule flags alone.
    assert!(oracle.total_tuples() > 3, "rules must have derived data");
}

#[test]
fn rounds_reaches_the_same_fixpoint() {
    let mut eager_sys = example_builder(&[(1, 2), (2, 3), (3, 1)]).build().unwrap();
    eager_sys.run_update();

    let mut b = example_builder(&[(1, 2), (2, 3), (3, 1)]);
    b.config_mut().mode = UpdateMode::Rounds;
    let mut sys = b.build().unwrap();
    let report = sys.run_update();
    assert!(report.outcome.quiescent);
    assert!(report.all_closed, "rounds mode must close");
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert!(report.rounds >= 2, "cyclic example needs several rounds");
    assert!(
        sys.snapshot().equivalent(&eager_sys.snapshot()),
        "both modes converge to the same state"
    );
}

#[test]
fn sync_vs_async_tradeoff_holds() {
    // The paper: the asynchronous model "may be faster at expense of an
    // increase of the number of messages in the network".
    let mut eager = example_builder(&[(1, 2), (2, 3), (3, 1)]).build().unwrap();
    let eager_report = eager.run_update();

    let mut b = example_builder(&[(1, 2), (2, 3), (3, 1)]);
    b.config_mut().mode = UpdateMode::Rounds;
    let mut rounds = b.build().unwrap();
    let rounds_report = rounds.run_update();

    assert!(
        eager_report.outcome.virtual_time <= rounds_report.outcome.virtual_time,
        "eager ({}) should converge no later than rounds ({})",
        eager_report.outcome.virtual_time,
        rounds_report.outcome.virtual_time,
    );
}

#[test]
fn discovery_learns_the_paper_paths() {
    let mut sys = example_builder(&[]).build().unwrap();
    let report = sys.run_discovery();
    assert!(report.outcome.quiescent);
    assert!(report.all_closed, "discovery must close everywhere");

    let paths_of = |node: u32| -> Vec<String> {
        let mut p: Vec<String> = sys
            .peer(NodeId(node))
            .unwrap()
            .paths()
            .expect("paths computed")
            .iter()
            .map(|p| format_path(p))
            .collect();
        p.sort();
        p
    };
    // The corrected Section 2 table (see EXPERIMENTS.md E1).
    assert_eq!(paths_of(0), vec!["ABCA", "ABCB", "ABCDA", "ABE"]);
    assert_eq!(paths_of(1), vec!["BCAB", "BCB", "BCDAB", "BE"]);
    assert_eq!(
        paths_of(2),
        vec!["CABC", "CABE", "CBC", "CBE", "CDABC", "CDABE"]
    );
    assert_eq!(paths_of(3), vec!["DABCA", "DABCB", "DABCD", "DABE"]);
    assert_eq!(paths_of(4), Vec::<String>::new());
}

#[test]
fn local_queries_after_update_need_no_network() {
    let mut sys = example_builder(&[(1, 2), (2, 3), (3, 1)]).build().unwrap();
    sys.run_update();
    let before = sys.net_stats().total_messages;
    // Query node C locally for derived c-facts.
    let ans = sys.query(NodeId(2), "q(X, Y) :- c(X, Y)").unwrap();
    assert!(!ans.is_empty());
    assert_eq!(
        sys.net_stats().total_messages,
        before,
        "local query must exchange zero messages"
    );
}

#[test]
fn empty_seed_converges_trivially() {
    let mut sys = example_builder(&[]).build().unwrap();
    let report = sys.run_update();
    assert!(report.outcome.quiescent);
    assert!(report.all_closed);
    assert_eq!(sys.snapshot().total_tuples(), 0);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut sys = example_builder(&[(1, 2), (2, 3), (3, 1)]).build().unwrap();
        let r = sys.run_update();
        (
            r.messages,
            r.bytes,
            r.outcome.virtual_time,
            sys.snapshot().total_tuples(),
        )
    };
    assert_eq!(run(), run(), "simulator must be deterministic");
}

#[test]
fn larger_seed_more_messages() {
    let small = {
        let mut sys = example_builder(&[(1, 2)]).build().unwrap();
        sys.run_update().bytes
    };
    let large = {
        let seed: Vec<(i64, i64)> = (0..20).map(|i| (i, i + 1)).collect();
        let mut sys = example_builder(&seed).build().unwrap();
        sys.run_update().bytes
    };
    assert!(large > small, "more data must ship more bytes");
}
