//! Protocol-detail tests: super-peer commands (statistics collection/reset,
//! rule-file broadcast — the Section 5 implementation features), initiation
//! modes, and behaviour under latency jitter.

use p2p_core::config::Initiation;
use p2p_core::rule::{CoordinationRule, RuleSet};
use p2p_core::system::{LatencySpec, P2PSystemBuilder};
use p2p_net::SimTime;
use p2p_relational::Value;
use p2p_topology::NodeId;

fn chain_builder() -> P2PSystemBuilder {
    let mut b = P2PSystemBuilder::new();
    b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
    b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
    b.add_node_with_schema(2, "c(x: int, y: int).").unwrap();
    b.add_rule("r1", "B:b(X,Y) => A:a(X,Y)").unwrap();
    b.add_rule("r2", "C:c(X,Y) => B:b(X,Y)").unwrap();
    for i in 0..8i64 {
        b.insert(2, "c", vec![Value::Int(i), Value::Int(i + 1)])
            .unwrap();
    }
    b
}

#[test]
fn collect_stats_covers_every_peer() {
    let mut sys = chain_builder().build().unwrap();
    sys.run_update();
    let stats = sys.collect_stats();
    assert_eq!(stats.len(), 3, "one report per node incl. the super-peer");
    // The data source (C) shipped rows; the sink (A) inserted them.
    assert!(stats[&NodeId(2)].rows_shipped >= 8);
    assert!(stats[&NodeId(0)].tuples_inserted >= 8);
    assert!(stats[&NodeId(0)].queries_sent >= 1);
}

#[test]
fn reset_stats_zeroes_all_peers() {
    let mut sys = chain_builder().build().unwrap();
    sys.run_update();
    sys.reset_stats();
    let stats = sys.collect_stats();
    for (node, s) in &stats {
        assert_eq!(s.tuples_inserted, 0, "{node} not reset");
        assert_eq!(s.rows_shipped, 0, "{node} not reset");
    }
}

#[test]
fn broadcast_rules_swaps_the_topology_at_runtime() {
    // Section 5: "one peer can change the network topology at run-time.
    // This is extremely convenient for running multiple experiments".
    let mut sys = chain_builder().build().unwrap();
    let first = sys.run_update();
    assert!(first.all_closed);
    assert_eq!(
        sys.database(NodeId(0))
            .unwrap()
            .relation("a")
            .unwrap()
            .len(),
        8
    );

    // New rule file: reverse the data flow (A's data — now 8 tuples — feeds
    // C through B is gone; instead C imports directly from A).
    let names = |s: &str| match s {
        "A" => Some(NodeId(0)),
        "B" => Some(NodeId(1)),
        "C" => Some(NodeId(2)),
        _ => None,
    };
    let mut new_rules = RuleSet::new();
    new_rules
        .add(CoordinationRule::parse("n1", "A:a(X,Y) => C:c(Y,X)", None, &names).unwrap())
        .unwrap();
    sys.broadcast_rules(new_rules);

    let second = sys.run_update();
    assert!(second.outcome.quiescent);
    assert!(second.errors.is_empty(), "{:?}", second.errors);
    // C gained the reversed tuples (its own 8 + 8 reversed, deduplicated by
    // value overlap: (i+1, i) vs (i, i+1) are distinct).
    assert_eq!(
        sys.database(NodeId(2))
            .unwrap()
            .relation("c")
            .unwrap()
            .len(),
        16
    );
}

#[test]
fn broadcast_rules_resets_discovery_knowledge() {
    // Discovery edges learned under the old rule file must not survive a
    // rule broadcast: re-running discovery afterwards reports exactly the
    // new topology.
    let mut sys = chain_builder().build().unwrap();
    sys.run_discovery_all();
    assert!(sys
        .peer(NodeId(0))
        .unwrap()
        .known_edges()
        .contains(&(NodeId(0), NodeId(1))));

    let names = |s: &str| match s {
        "A" => Some(NodeId(0)),
        "B" => Some(NodeId(1)),
        "C" => Some(NodeId(2)),
        _ => None,
    };
    let mut new_rules = RuleSet::new();
    new_rules
        .add(CoordinationRule::parse("n1", "A:a(X,Y) => C:c(Y,X)", None, &names).unwrap())
        .unwrap();
    sys.broadcast_rules(new_rules);
    sys.run_discovery_all();
    let edges = sys.peer(NodeId(2)).unwrap().known_edges();
    assert!(edges.contains(&(NodeId(2), NodeId(0))), "{edges:?}");
    assert!(
        !edges.contains(&(NodeId(0), NodeId(1))),
        "stale pre-broadcast edge survived: {edges:?}"
    );
}

#[test]
fn query_propagation_initiation_covers_only_reachable_nodes() {
    // Same chain plus an unrelated node D with a rule from A: under strict
    // A4 propagation (no flood), D never participates because nothing on a
    // dependency path from the super-peer leads to it.
    let mut b = chain_builder();
    b.add_node_with_schema(3, "d(x: int, y: int).").unwrap();
    b.add_rule("rd", "A:a(X,Y) => D:d(X,Y)").unwrap();
    b.config_mut().initiation = Initiation::QueryPropagation;
    let mut sys = b.build().unwrap();
    let report = sys.run_update();
    assert!(report.outcome.quiescent);
    // A, B, C participated and closed…
    assert!(sys.closed(NodeId(0)));
    assert!(sys.closed(NodeId(1)));
    assert!(sys.closed(NodeId(2)));
    // …D has a rule but was never reached: open and empty (its rule's body
    // is at A, and A never *forwards* to dependants under pure A4).
    assert!(!report.all_closed);
    assert_eq!(
        sys.database(NodeId(3))
            .unwrap()
            .relation("d")
            .unwrap()
            .len(),
        0
    );
}

#[test]
fn flood_initiation_covers_dependants_too() {
    let mut b = chain_builder();
    b.add_node_with_schema(3, "d(x: int, y: int).").unwrap();
    b.add_rule("rd", "A:a(X,Y) => D:d(X,Y)").unwrap();
    let mut sys = b.build().unwrap();
    let report = sys.run_update();
    assert!(
        report.all_closed,
        "flood reaches dependants of the super-peer"
    );
    assert_eq!(
        sys.database(NodeId(3))
            .unwrap()
            .relation("d")
            .unwrap()
            .len(),
        8
    );
}

#[test]
fn jitter_reordering_does_not_break_the_protocol() {
    for seed in [1u64, 7, 23, 99] {
        let mut b = chain_builder();
        b.set_latency(LatencySpec::Uniform {
            min: SimTime::from_micros(100),
            max: SimTime::from_millis(50),
            seed,
        });
        let mut sys = b.build().unwrap();
        let report = sys.run_update();
        assert!(report.all_closed, "seed {seed}");
        assert!(
            sys.snapshot().equivalent(&sys.oracle().unwrap()),
            "seed {seed}: jitter changed the fix-point"
        );
    }
}

#[test]
fn bandwidth_latency_penalises_bulk_transfers() {
    let run = |records: i64| {
        let mut b = P2PSystemBuilder::new();
        b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
        b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
        b.add_rule("r", "B:b(X,Y) => A:a(X,Y)").unwrap();
        for i in 0..records {
            b.insert(1, "b", vec![Value::Int(i), Value::Int(i)])
                .unwrap();
        }
        b.set_latency(LatencySpec::Bandwidth {
            base: SimTime::from_millis(1),
            nanos_per_byte: 1_000_000, // 1 ms per byte: data dominates
        });
        let mut sys = b.build().unwrap();
        sys.run_update().outcome.virtual_time
    };
    assert!(run(50) > run(5), "bigger answers must take longer");
}

#[test]
fn update_report_counts_are_stable_across_identical_runs() {
    let run = || {
        let mut sys = chain_builder().build().unwrap();
        let r = sys.run_update();
        (r.messages, r.bytes)
    };
    assert_eq!(run(), run());
}

#[test]
fn second_epoch_is_cheap_when_nothing_changed() {
    let mut sys = chain_builder().build().unwrap();
    let first = sys.run_update();
    let second = sys.run_update();
    assert!(second.all_closed);
    // Deltas are empty in the second epoch, so fewer bytes move.
    assert!(
        second.bytes <= first.bytes,
        "idempotent re-run must not ship more: {} vs {}",
        second.bytes,
        first.bytes
    );
}
