//! Dijkstra–Scholten termination detection for diffusing computations.
//!
//! Each update **session** is a textbook *diffusing computation*: it starts
//! at one node (the session's root), spreads by messages, and is finished
//! exactly when every node is passive and no message of that session is in
//! flight. The paper detects this condition through flags on maximal
//! dependency paths, whose number is factorial in clique size;
//! Dijkstra–Scholten (1980) detects the identical condition with one
//! acknowledgement per message and one counter per node, which is what
//! makes the update scale to the paper's 31-node networks with cyclic
//! topologies (see DESIGN.md §3, substitution 3).
//!
//! One [`DiffusingState`] instance exists **per session** (inside each
//! peer's session table): concurrent sessions are independent diffusing
//! computations with independent detectors, exactly as Dijkstra–Scholten
//! intends — acks are session-tagged on the wire and debit only their own
//! session's deficit.
//!
//! Mechanics: every *basic* (protocol) message is eventually acknowledged.
//! A node's first unacknowledged basic message of a session makes the
//! sender its *parent* in that session's tree; the ack for that engaging
//! message is deferred until the node is passive and all messages *it* sent
//! for the session have been acknowledged. The root detects termination
//! when its own deficit returns to zero.

use p2p_topology::NodeId;
use serde::{Deserialize, Serialize};

/// What to do about acknowledging a just-processed basic message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckDecision {
    /// Acknowledge immediately after processing.
    Immediate,
    /// This message engaged the node; the ack is deferred until disengage.
    Deferred,
}

/// Action produced by [`DiffusingState::try_disengage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disengage {
    /// Nothing to do yet.
    None,
    /// Send the deferred ack to the parent and forget it.
    AckParent(NodeId),
    /// The root's deficit reached zero: the computation has terminated.
    RootTerminated,
}

/// Per-node Dijkstra–Scholten state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DiffusingState {
    engaged: bool,
    is_root: bool,
    parent: Option<NodeId>,
    /// Basic messages sent and not yet acknowledged.
    deficit: u64,
}

impl DiffusingState {
    /// Fresh, disengaged state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets for a new computation (new epoch).
    pub fn reset(&mut self) {
        *self = DiffusingState::default();
    }

    /// Marks this node as the computation's root (the super-peer) and
    /// engages it. Call before the root sends its first basic messages.
    pub fn engage_as_root(&mut self) {
        self.engaged = true;
        self.is_root = true;
        self.parent = None;
    }

    /// True iff currently engaged in the computation.
    pub fn engaged(&self) -> bool {
        self.engaged
    }

    /// True iff this node is the root.
    pub fn is_root(&self) -> bool {
        self.is_root
    }

    /// The engaging parent, if any.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Current deficit (unacknowledged sends).
    pub fn deficit(&self) -> u64 {
        self.deficit
    }

    /// Records the receipt of a basic message from `from`.
    pub fn on_receive(&mut self, from: NodeId) -> AckDecision {
        if self.engaged {
            AckDecision::Immediate
        } else {
            self.engaged = true;
            self.parent = Some(from);
            AckDecision::Deferred
        }
    }

    /// Records the sending of one basic message.
    pub fn on_send(&mut self) {
        debug_assert!(self.engaged, "only engaged nodes send basic messages");
        self.deficit += 1;
    }

    /// Records an acknowledgement of one of our sends. An ack with no
    /// outstanding send is silently dropped: after a crash the node's
    /// deficit is rebuilt from zero, yet acks for pre-crash sends may
    /// still be in flight and arrive post-restart.
    pub fn on_ack(&mut self) {
        self.deficit = self.deficit.saturating_sub(1);
    }

    /// Called whenever the node becomes passive (for us: at the end of every
    /// handler — handlers are atomic). Decides whether to disengage.
    pub fn try_disengage(&mut self) -> Disengage {
        if !self.engaged || self.deficit > 0 {
            return Disengage::None;
        }
        if self.is_root {
            // Stay engaged so late messages (dynamic changes in the same
            // epoch) are still part of this computation; the caller
            // broadcasts the fix-point.
            return Disengage::RootTerminated;
        }
        let parent = self.parent.take().expect("engaged non-root has a parent");
        self.engaged = false;
        Disengage::AckParent(parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_with_no_sends_terminates_at_once() {
        let mut ds = DiffusingState::new();
        ds.engage_as_root();
        assert_eq!(ds.try_disengage(), Disengage::RootTerminated);
    }

    #[test]
    fn root_waits_for_acks() {
        let mut ds = DiffusingState::new();
        ds.engage_as_root();
        ds.on_send();
        ds.on_send();
        assert_eq!(ds.try_disengage(), Disengage::None);
        ds.on_ack();
        assert_eq!(ds.try_disengage(), Disengage::None);
        ds.on_ack();
        assert_eq!(ds.try_disengage(), Disengage::RootTerminated);
    }

    #[test]
    fn non_root_defers_engaging_ack_until_quiet() {
        let mut ds = DiffusingState::new();
        assert_eq!(ds.on_receive(NodeId(7)), AckDecision::Deferred);
        ds.on_send();
        assert_eq!(ds.try_disengage(), Disengage::None);
        ds.on_ack();
        assert_eq!(ds.try_disengage(), Disengage::AckParent(NodeId(7)));
        assert!(!ds.engaged());
    }

    #[test]
    fn second_message_acked_immediately() {
        let mut ds = DiffusingState::new();
        assert_eq!(ds.on_receive(NodeId(1)), AckDecision::Deferred);
        assert_eq!(ds.on_receive(NodeId(2)), AckDecision::Immediate);
        assert_eq!(ds.on_receive(NodeId(1)), AckDecision::Immediate);
        // Still owes the deferred ack to node 1 only.
        assert_eq!(ds.try_disengage(), Disengage::AckParent(NodeId(1)));
    }

    #[test]
    fn reengagement_after_disengage() {
        let mut ds = DiffusingState::new();
        assert_eq!(ds.on_receive(NodeId(1)), AckDecision::Deferred);
        assert_eq!(ds.try_disengage(), Disengage::AckParent(NodeId(1)));
        // A later message re-engages with a possibly different parent.
        assert_eq!(ds.on_receive(NodeId(2)), AckDecision::Deferred);
        assert_eq!(ds.try_disengage(), Disengage::AckParent(NodeId(2)));
    }

    #[test]
    fn simulated_tree_computation_terminates_correctly() {
        // Root 0 sends to 1 and 2; 1 sends to 2; all acks flow back.
        // Model the message soup explicitly and assert the root terminates
        // only after every ack.
        let mut nodes: Vec<DiffusingState> = (0..3).map(|_| DiffusingState::new()).collect();
        nodes[0].engage_as_root();
        nodes[0].on_send(); // 0→1
        nodes[0].on_send(); // 0→2

        // 1 receives from 0 (engages), sends to 2.
        assert_eq!(nodes[1].on_receive(NodeId(0)), AckDecision::Deferred);
        nodes[1].on_send();
        assert_eq!(nodes[1].try_disengage(), Disengage::None);

        // 2 receives from 0 (engages) …
        assert_eq!(nodes[2].on_receive(NodeId(0)), AckDecision::Deferred);
        // … and from 1 (immediate ack to 1).
        assert_eq!(nodes[2].on_receive(NodeId(1)), AckDecision::Immediate);
        nodes[1].on_ack(); // 1 gets the immediate ack
                           // 2 is passive: acks parent 0.
        assert_eq!(nodes[2].try_disengage(), Disengage::AckParent(NodeId(0)));
        nodes[0].on_ack();
        assert_eq!(nodes[0].try_disengage(), Disengage::None); // deficit 1 left

        // 1 now quiet: acks parent 0.
        assert_eq!(nodes[1].try_disengage(), Disengage::AckParent(NodeId(0)));
        nodes[0].on_ack();
        assert_eq!(nodes[0].try_disengage(), Disengage::RootTerminated);
    }
}
