//! Coordination rules (Definition 2) and rule sets.
//!
//! A coordination rule `j₁:b₁ ∧ … ∧ jₖ:bₖ ⇒ i:h` lets node `i` import data
//! from its acquaintances `j₁…jₖ`. Bodies are conjunctive queries with
//! built-ins, grouped here into one [`BodyPart`] per body node (the paper's
//! common case is a single body node, but Definition 2 allows several; the
//! head node then joins the per-node extensions locally). Heads are
//! conjunctions over the head node's schema and may contain **existential
//! variables**, materialised as labeled nulls by the restricted chase.
//!
//! The module also implements **weak acyclicity** of rule sets — the
//! standard syntactic condition (Fagin et al., data exchange) under which
//! the chase, and therefore the distributed update fix-point, terminates.
//! The paper asserts termination (Lemma 1.2) without stating a restriction;
//! see DESIGN.md §3 for how we reconcile that.

use crate::error::{CoreError, CoreResult};
use p2p_relational::query::{parse_implication, Atom, Constraint, Term};
use p2p_relational::DatabaseSchema;
use p2p_topology::{DependencyGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// Identifier of a coordination rule, unique network-wide. The paper keys
/// rules by `(pair of nodes, name)`; a flat id plus the name registry in
/// [`RuleSet`] is equivalent and simpler to route on.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RuleId(pub u32);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The body fragment of a rule living at one acquaintance node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BodyPart {
    /// The node owning this fragment.
    pub node: NodeId,
    /// Unqualified atoms over that node's schema.
    pub atoms: Vec<Atom>,
    /// Constraints whose variables are all bound by this fragment — pushed
    /// down so the body node filters before shipping (the "more fine grained
    /// queries to acquaintances" optimization the paper mentions).
    pub local_constraints: Vec<Constraint>,
    /// Distinct variables of the fragment, in first-occurrence order; answer
    /// rows are tuples over exactly these variables.
    pub vars: Vec<Arc<str>>,
}

/// A coordination rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoordinationRule {
    /// Network-unique id (assigned by [`RuleSet::add`]).
    pub id: RuleId,
    /// Human-readable name (`r1`, `r2`, … in the paper).
    pub name: Arc<str>,
    /// The node importing data (rule head).
    pub head_node: NodeId,
    /// Body fragments, one per body node, in node order.
    pub parts: Vec<BodyPart>,
    /// Constraints spanning several fragments, applied at the head after the
    /// join.
    pub join_constraints: Vec<Constraint>,
    /// Unqualified head atoms over the head node's schema.
    pub head: Vec<Atom>,
}

impl CoordinationRule {
    /// Parses the paper's rule notation, e.g.
    /// `B:b(X,Y), B:b(X,Z), X != Z => A:a(X,Y)`.
    ///
    /// Body atoms must be node-qualified. Head atoms may all be qualified
    /// with the same node, or left unqualified if `default_head` is given.
    /// `resolve` maps node names (`A`, `B`, …) to ids.
    pub fn parse(
        name: &str,
        text: &str,
        default_head: Option<NodeId>,
        resolve: &dyn Fn(&str) -> Option<NodeId>,
    ) -> CoreResult<Self> {
        let imp = parse_implication(text).map_err(CoreError::Relational)?;
        if imp.head.is_empty() || imp.body.is_empty() {
            return Err(CoreError::MalformedRule(name.to_string()));
        }

        // Resolve the head node.
        let mut head_node: Option<NodeId> = default_head;
        for atom in &imp.head {
            if let Some(q) = &atom.qualifier {
                let id = resolve(q).ok_or_else(|| CoreError::UnknownNode(q.to_string()))?;
                match head_node {
                    Some(h) if h != id && default_head.is_none() => {
                        return Err(CoreError::MalformedRule(format!(
                            "{name}: head atoms qualified with different nodes"
                        )))
                    }
                    _ => head_node = Some(id),
                }
            }
        }
        let head_node = head_node.ok_or_else(|| CoreError::UnresolvedHead(name.to_string()))?;

        // Group body atoms by node.
        let mut parts: BTreeMap<NodeId, Vec<Atom>> = BTreeMap::new();
        for atom in &imp.body {
            let q = atom.qualifier.as_ref().ok_or_else(|| {
                CoreError::MalformedRule(format!(
                    "{name}: body atom `{atom}` must be node-qualified"
                ))
            })?;
            let id = resolve(q).ok_or_else(|| CoreError::UnknownNode(q.to_string()))?;
            parts.entry(id).or_default().push(atom.unqualified());
        }
        if parts.contains_key(&head_node) {
            return Err(CoreError::SelfRule(name.to_string()));
        }

        // Push constraints down to single fragments where possible.
        let part_vars: BTreeMap<NodeId, BTreeSet<Arc<str>>> = parts
            .iter()
            .map(|(n, atoms)| {
                (
                    *n,
                    atoms
                        .iter()
                        .flat_map(|a| a.variables())
                        .collect::<BTreeSet<_>>(),
                )
            })
            .collect();
        let mut local: BTreeMap<NodeId, Vec<Constraint>> = BTreeMap::new();
        let mut join_constraints = Vec::new();
        'outer: for c in &imp.constraints {
            let cvars = c.variables();
            for (n, vars) in &part_vars {
                if cvars.iter().all(|v| vars.contains(v)) {
                    local.entry(*n).or_default().push(c.clone());
                    continue 'outer;
                }
            }
            join_constraints.push(c.clone());
        }

        let parts: Vec<BodyPart> = parts
            .into_iter()
            .map(|(node, atoms)| {
                let mut vars = Vec::new();
                for a in &atoms {
                    for v in a.variables() {
                        if !vars.contains(&v) {
                            vars.push(v);
                        }
                    }
                }
                BodyPart {
                    node,
                    atoms,
                    local_constraints: local.remove(&node).unwrap_or_default(),
                    vars,
                }
            })
            .collect();

        let head: Vec<Atom> = imp.head.iter().map(Atom::unqualified).collect();
        Ok(CoordinationRule {
            id: RuleId(0),
            name: Arc::from(name),
            head_node,
            parts,
            join_constraints,
            head,
        })
    }

    /// Body nodes, in id order.
    pub fn body_nodes(&self) -> Vec<NodeId> {
        self.parts.iter().map(|p| p.node).collect()
    }

    /// Distinct universal (body) variables.
    pub fn frontier_vars(&self) -> BTreeSet<Arc<str>> {
        self.parts
            .iter()
            .flat_map(|p| p.vars.iter().cloned())
            .collect()
    }

    /// Head variables not bound by the body — materialised as fresh nulls.
    pub fn existential_vars(&self) -> BTreeSet<Arc<str>> {
        let frontier = self.frontier_vars();
        self.head
            .iter()
            .flat_map(|a| a.variables())
            .filter(|v| !frontier.contains(v))
            .collect()
    }

    /// Validates the rule against the nodes' schemas: all nodes exist, all
    /// relations exist with matching arity, and join-constraint variables
    /// are bound by the body.
    pub fn validate(&self, schemas: &BTreeMap<NodeId, DatabaseSchema>) -> CoreResult<()> {
        let fail = |detail: String| CoreError::SchemaViolation {
            rule: self.name.to_string(),
            detail,
        };
        let check_atoms = |node: NodeId, atoms: &[Atom]| -> CoreResult<()> {
            let schema = schemas
                .get(&node)
                .ok_or_else(|| CoreError::UnknownNode(node.to_string()))?;
            for a in atoms {
                let rel = schema
                    .relation(&a.relation)
                    .ok_or_else(|| fail(format!("node {node} has no relation `{}`", a.relation)))?;
                if rel.arity() != a.terms.len() {
                    return Err(fail(format!(
                        "`{}` at node {node} has arity {}, atom has {} terms",
                        a.relation,
                        rel.arity(),
                        a.terms.len()
                    )));
                }
                for (pos, t) in a.terms.iter().enumerate() {
                    if let Term::Const(c) = t {
                        if !rel.columns[pos].ty.admits(c) {
                            return Err(fail(format!(
                                "constant {c} does not fit column {pos} of `{}`",
                                a.relation
                            )));
                        }
                    }
                }
            }
            Ok(())
        };
        for part in &self.parts {
            check_atoms(part.node, &part.atoms)?;
        }
        check_atoms(self.head_node, &self.head)?;
        let frontier = self.frontier_vars();
        for c in &self.join_constraints {
            for v in c.variables() {
                if !frontier.contains(&v) {
                    return Err(fail(format!("join constraint variable `{v}` unbound")));
                }
            }
        }
        Ok(())
    }

    /// Serialized size (rules travel in `AddRule` and `BroadcastRules`
    /// messages) — the exact encoded byte length.
    pub fn wire_size(&self) -> usize {
        p2p_net::encoded_wire_size(self)
    }
}

impl fmt::Display for CoordinationRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        let mut first = true;
        for part in &self.parts {
            for a in &part.atoms {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{}:{}", part.node, a)?;
            }
            for c in &part.local_constraints {
                write!(f, ", {c}")?;
            }
        }
        for c in &self.join_constraints {
            write!(f, ", {c}")?;
        }
        write!(f, " => ")?;
        for (i, a) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", self.head_node, a)?;
        }
        Ok(())
    }
}

/// A validated set of coordination rules with id and name registries.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleSet {
    rules: BTreeMap<RuleId, CoordinationRule>,
    by_name: BTreeMap<Arc<str>, RuleId>,
    next_id: u32,
}

impl RuleSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule, assigning its id. Rejects duplicate names.
    pub fn add(&mut self, mut rule: CoordinationRule) -> CoreResult<RuleId> {
        if self.by_name.contains_key(&rule.name) {
            return Err(CoreError::DuplicateRule(rule.name.to_string()));
        }
        let id = RuleId(self.next_id);
        self.next_id += 1;
        rule.id = id;
        self.by_name.insert(rule.name.clone(), id);
        self.rules.insert(id, rule);
        Ok(id)
    }

    /// Removes a rule by id; returns it if present.
    pub fn remove(&mut self, id: RuleId) -> Option<CoordinationRule> {
        let rule = self.rules.remove(&id)?;
        self.by_name.remove(&rule.name);
        Some(rule)
    }

    /// Lookup by id.
    pub fn get(&self, id: RuleId) -> Option<&CoordinationRule> {
        self.rules.get(&id)
    }

    /// Lookup by name.
    pub fn by_name(&self, name: &str) -> Option<&CoordinationRule> {
        self.by_name.get(name).and_then(|id| self.rules.get(id))
    }

    /// Iterates rules in id order.
    pub fn iter(&self) -> impl Iterator<Item = &CoordinationRule> {
        self.rules.values()
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Rules whose head is at `node` (the rules that node "is a target of",
    /// which the paper assumes each node initially knows).
    pub fn with_head(&self, node: NodeId) -> Vec<&CoordinationRule> {
        self.iter().filter(|r| r.head_node == node).collect()
    }

    /// The induced dependency graph (Definition 5): an edge `head → body
    /// node` per rule fragment.
    pub fn dependency_graph(&self) -> DependencyGraph {
        let mut g = DependencyGraph::new();
        for r in self.iter() {
            g.add_node(r.head_node);
            for p in &r.parts {
                g.add_edge(r.head_node, p.node);
            }
        }
        g
    }

    /// Pipe neighbours of a node: body nodes of its rules plus head nodes of
    /// rules sourcing it (Section 5: pipes are created in both cases).
    pub fn pipe_neighbors(&self, node: NodeId) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        for r in self.iter() {
            if r.head_node == node {
                out.extend(r.parts.iter().map(|p| p.node));
            }
            if r.parts.iter().any(|p| p.node == node) {
                out.insert(r.head_node);
            }
        }
        out.remove(&node);
        out
    }

    /// Checks **weak acyclicity** of the rule set: builds the position
    /// dependency graph — positions are `(node, relation, column)`; for each
    /// rule and each universal variable occurring in the head, every body
    /// occurrence position gets a *normal* edge to every head occurrence
    /// position and a *special* edge to every existential position — and
    /// requires that no cycle traverses a special edge.
    ///
    /// Returns a human-readable witness of one offending special edge on a
    /// cycle otherwise.
    pub fn check_weak_acyclicity(&self) -> Result<(), String> {
        type Pos = (NodeId, Arc<str>, usize);
        let mut index: HashMap<Pos, u32> = HashMap::new();
        let mut names: Vec<Pos> = Vec::new();
        let mut intern = |p: Pos| -> u32 {
            if let Some(i) = index.get(&p) {
                return *i;
            }
            let i = names.len() as u32;
            index.insert(p.clone(), i);
            names.push(p);
            i
        };

        let mut normal: Vec<(u32, u32)> = Vec::new();
        let mut special: Vec<(u32, u32)> = Vec::new();
        for rule in self.iter() {
            // Body positions per universal variable.
            let mut body_pos: BTreeMap<Arc<str>, Vec<u32>> = BTreeMap::new();
            for part in &rule.parts {
                for atom in &part.atoms {
                    for (col, t) in atom.terms.iter().enumerate() {
                        if let Term::Var(v) = t {
                            let p = intern((part.node, atom.relation.clone(), col));
                            body_pos.entry(v.clone()).or_default().push(p);
                        }
                    }
                }
            }
            let existential = rule.existential_vars();
            // Head positions.
            let mut head_univ: Vec<(Arc<str>, u32)> = Vec::new();
            let mut head_exist: Vec<u32> = Vec::new();
            for atom in &rule.head {
                for (col, t) in atom.terms.iter().enumerate() {
                    if let Term::Var(v) = t {
                        let p = intern((rule.head_node, atom.relation.clone(), col));
                        if existential.contains(v) {
                            head_exist.push(p);
                        } else {
                            head_univ.push((v.clone(), p));
                        }
                    }
                }
            }
            // Universal variables occurring in the head drive the edges.
            let head_vars: BTreeSet<Arc<str>> = head_univ.iter().map(|(v, _)| v.clone()).collect();
            for v in &head_vars {
                let Some(sources) = body_pos.get(v) else {
                    continue;
                };
                for &src in sources {
                    for (hv, hp) in &head_univ {
                        if hv == v {
                            normal.push((src, *hp));
                        }
                    }
                    for &ep in &head_exist {
                        special.push((src, ep));
                    }
                }
            }
        }

        // SCCs over the union graph; a special edge inside one SCC means a
        // cycle through it. Reuse the topology crate's Tarjan by mapping
        // position indices to NodeIds (positions are never self-looping:
        // head and body nodes are distinct).
        let mut g = DependencyGraph::new();
        for i in 0..names.len() as u32 {
            g.add_node(NodeId(i));
        }
        for &(a, b) in normal.iter().chain(special.iter()) {
            g.add_edge(NodeId(a), NodeId(b));
        }
        let mut comp_of: HashMap<u32, usize> = HashMap::new();
        for (ci, comp) in p2p_topology::condensation(&g).into_iter().enumerate() {
            for n in comp {
                comp_of.insert(n.0, ci);
            }
        }
        for &(a, b) in &special {
            if comp_of.get(&a) == comp_of.get(&b) {
                let (na, ra, ca) = &names[a as usize];
                let (nb, rb, cb) = &names[b as usize];
                return Err(format!(
                    "special edge ({na},{ra},{ca}) → ({nb},{rb},{cb}) lies on a cycle"
                ));
            }
        }
        Ok(())
    }
}

/// Builds the schema used by every node of the paper's Section 2 running
/// example (all relations binary except `f`).
pub fn paper_example_schema(node: NodeId) -> DatabaseSchema {
    let text = match node.0 {
        0 => "a(x: int, y: int).",
        1 => "b(x: int, y: int).",
        2 => "c(x: int, y: int). f(x: int).",
        3 => "d(x: int, y: int).",
        _ => "e(x: int, y: int).",
    };
    DatabaseSchema::parse(text).expect("static schema text")
}

/// Parses the seven rules r1–r7 of the paper's running example into a
/// [`RuleSet`] (nodes A=0 … E=4).
pub fn paper_example_rules() -> RuleSet {
    let resolve = |s: &str| -> Option<NodeId> {
        match s {
            "A" => Some(NodeId(0)),
            "B" => Some(NodeId(1)),
            "C" => Some(NodeId(2)),
            "D" => Some(NodeId(3)),
            "E" => Some(NodeId(4)),
            _ => None,
        }
    };
    let texts = [
        ("r1", "E:e(X,Y) => B:b(X,Y)"),
        // r2 in the paper reads `B:b(X,Y), b(Y,Z) → C:c(X,Z)`; the second
        // atom is at B too.
        ("r2", "B:b(X,Y), B:b(Y,Z) => C:c(X,Z)"),
        ("r3", "C:c(X,Y), C:c(Y,Z) => B:b(X,Z)"),
        ("r4", "B:b(X,Y), B:b(X,Z), X != Z => A:a(X,Y)"),
        ("r5", "A:a(X,Y) => C:f(X)"),
        ("r6", "A:a(X,Y) => D:d(Y,X)"),
        ("r7", "D:d(X,Y), D:d(Y,Z) => C:c(X,Y)"),
    ];
    let mut set = RuleSet::new();
    for (name, text) in texts {
        let rule =
            CoordinationRule::parse(name, text, None, &resolve).expect("static example rule");
        set.add(rule).expect("unique names");
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolve(s: &str) -> Option<NodeId> {
        match s {
            "A" => Some(NodeId(0)),
            "B" => Some(NodeId(1)),
            "C" => Some(NodeId(2)),
            _ => None,
        }
    }

    #[test]
    fn parse_single_body_rule() {
        let r = CoordinationRule::parse("r", "B:b(X,Y) => A:a(X,Y)", None, &resolve).unwrap();
        assert_eq!(r.head_node, NodeId(0));
        assert_eq!(r.body_nodes(), vec![NodeId(1)]);
        assert_eq!(r.parts[0].vars.len(), 2);
        assert!(r.existential_vars().is_empty());
    }

    #[test]
    fn parse_multi_node_body_groups_fragments() {
        let r =
            CoordinationRule::parse("r", "B:b(X,Y), C:c(Y,Z) => A:a(X,Z)", None, &resolve).unwrap();
        assert_eq!(r.body_nodes(), vec![NodeId(1), NodeId(2)]);
        assert_eq!(r.parts[0].atoms.len(), 1);
        assert_eq!(r.parts[1].atoms.len(), 1);
    }

    #[test]
    fn constraint_pushdown() {
        let r = CoordinationRule::parse(
            "r",
            "B:b(X,Y), C:c(U,V), X != Y, X = U => A:a(X,V)",
            None,
            &resolve,
        )
        .unwrap();
        // X != Y is local to B's fragment; X = U spans both.
        let b_part = r.parts.iter().find(|p| p.node == NodeId(1)).unwrap();
        assert_eq!(b_part.local_constraints.len(), 1);
        assert_eq!(r.join_constraints.len(), 1);
    }

    #[test]
    fn existential_vars_detected() {
        let r = CoordinationRule::parse("r", "B:b(X,Y) => A:a(X,Z)", None, &resolve).unwrap();
        let ex = r.existential_vars();
        assert_eq!(ex.len(), 1);
        assert!(ex.contains(&Arc::from("Z")));
    }

    #[test]
    fn self_rule_rejected() {
        let e = CoordinationRule::parse("r", "A:a(X,Y) => A:a(Y,X)", None, &resolve).unwrap_err();
        assert_eq!(e, CoreError::SelfRule("r".to_string()));
    }

    #[test]
    fn unqualified_body_rejected() {
        let e = CoordinationRule::parse("r", "b(X,Y) => A:a(X,Y)", None, &resolve).unwrap_err();
        assert!(matches!(e, CoreError::MalformedRule(_)));
    }

    #[test]
    fn unknown_node_rejected() {
        let e = CoordinationRule::parse("r", "Z:b(X,Y) => A:a(X,Y)", None, &resolve).unwrap_err();
        assert_eq!(e, CoreError::UnknownNode("Z".to_string()));
    }

    #[test]
    fn default_head_applies_to_unqualified_head() {
        let r =
            CoordinationRule::parse("r", "B:b(X,Y) => a(X,Y)", Some(NodeId(0)), &resolve).unwrap();
        assert_eq!(r.head_node, NodeId(0));
        let e = CoordinationRule::parse("r", "B:b(X,Y) => a(X,Y)", None, &resolve).unwrap_err();
        assert!(matches!(e, CoreError::UnresolvedHead(_)));
    }

    #[test]
    fn paper_rules_dependency_graph_matches() {
        let rules = paper_example_rules();
        assert_eq!(rules.len(), 7);
        let g = rules.dependency_graph();
        assert_eq!(g, p2p_topology::graph::paper_example_graph());
    }

    #[test]
    fn paper_rules_validate_against_schemas() {
        let rules = paper_example_rules();
        let schemas: BTreeMap<NodeId, DatabaseSchema> = (0..5)
            .map(|i| (NodeId(i), paper_example_schema(NodeId(i))))
            .collect();
        for r in rules.iter() {
            r.validate(&schemas).unwrap();
        }
    }

    #[test]
    fn paper_rules_are_weakly_acyclic() {
        // None of r1–r7 has an existential head variable, so there are no
        // special edges and the set is trivially weakly acyclic.
        let rules = paper_example_rules();
        assert_eq!(rules.check_weak_acyclicity(), Ok(()));
    }

    #[test]
    fn existential_off_cycle_is_weakly_acyclic() {
        // A rule with an existential whose positions never feed back into a
        // cycle must pass: B:b(X,Y) ⇒ A:a(X,Z) with no rule out of A.
        let mut set = RuleSet::new();
        set.add(CoordinationRule::parse("r", "B:b(X,Y) => A:a(X,Z)", None, &resolve).unwrap())
            .unwrap();
        assert_eq!(set.check_weak_acyclicity(), Ok(()));
    }

    #[test]
    fn diverging_pair_is_not_weakly_acyclic() {
        let resolve2 = |s: &str| match s {
            "A" => Some(NodeId(0)),
            "B" => Some(NodeId(1)),
            _ => None,
        };
        let mut set = RuleSet::new();
        set.add(CoordinationRule::parse("f", "A:a(X,Y) => B:b(Y,Z)", None, &resolve2).unwrap())
            .unwrap();
        set.add(CoordinationRule::parse("g", "B:b(X,Y) => A:a(Y,Z)", None, &resolve2).unwrap())
            .unwrap();
        let err = set.check_weak_acyclicity().unwrap_err();
        assert!(err.contains("special edge"), "{err}");
    }

    #[test]
    fn pipe_neighbors_are_bidirectional() {
        let rules = paper_example_rules();
        // B's rules pull from E and C; C pulls from B: neighbors of B = {A?…}
        // A pulls from B (r4) → A is a neighbor too.
        let nb = rules.pipe_neighbors(NodeId(1));
        assert_eq!(nb, [NodeId(0), NodeId(2), NodeId(4)].into_iter().collect());
        // E sources r1 only: neighbor = {B}.
        assert_eq!(
            rules.pipe_neighbors(NodeId(4)),
            [NodeId(1)].into_iter().collect()
        );
    }

    #[test]
    fn rule_set_registry_round_trip() {
        let mut set = RuleSet::new();
        let r = CoordinationRule::parse("r9", "B:b(X,Y) => A:a(X,Y)", None, &resolve).unwrap();
        let id = set.add(r).unwrap();
        assert!(set.get(id).is_some());
        assert_eq!(set.by_name("r9").unwrap().id, id);
        // Duplicate name rejected.
        let dup = CoordinationRule::parse("r9", "C:c(X,Y) => A:a(X,Y)", None, &resolve).unwrap();
        assert!(matches!(set.add(dup), Err(CoreError::DuplicateRule(_))));
        // Removal clears both registries.
        assert!(set.remove(id).is_some());
        assert!(set.by_name("r9").is_none());
        assert!(set.is_empty());
    }

    #[test]
    fn validation_catches_arity_and_missing_relations() {
        let schemas: BTreeMap<NodeId, DatabaseSchema> = [
            (NodeId(0), DatabaseSchema::parse("a(x: int).").unwrap()),
            (
                NodeId(1),
                DatabaseSchema::parse("b(x: int, y: int).").unwrap(),
            ),
        ]
        .into_iter()
        .collect();
        let bad_arity = CoordinationRule::parse("r", "B:b(X) => A:a(X)", None, &resolve).unwrap();
        assert!(matches!(
            bad_arity.validate(&schemas),
            Err(CoreError::SchemaViolation { .. })
        ));
        let missing = CoordinationRule::parse("r", "B:zzz(X) => A:a(X)", None, &resolve).unwrap();
        assert!(matches!(
            missing.validate(&schemas),
            Err(CoreError::SchemaViolation { .. })
        ));
        let ok = CoordinationRule::parse("r", "B:b(X,Y) => A:a(X)", None, &resolve).unwrap();
        assert!(ok.validate(&schemas).is_ok());
    }

    #[test]
    fn display_round_trips_through_parse() {
        let r = CoordinationRule::parse(
            "r4",
            "B:b(X,Y), B:b(X,Z), X != Z => A:a(X,Y)",
            None,
            &resolve,
        )
        .unwrap();
        let shown = r.to_string();
        assert!(shown.contains("=>"));
        assert!(shown.contains("X != Z"));
    }
}
