//! Shared evaluation helpers: fragment evaluation, cross-fragment joins and
//! rule application. Used identically by the distributed peers (joining
//! shipped extensions at the head node) and by the global fix-point oracle
//! (joining local evaluations) — which is precisely why distributed results
//! can be compared against the oracle tuple-for-tuple.

use crate::error::CoreResult;
use crate::rule::{BodyPart, CoordinationRule};
use p2p_relational::chase::{apply_head, ChaseConfig, ChaseOutcome, ChaseState};
use p2p_relational::query::ast::Term;
use p2p_relational::query::{
    evaluate_bindings, evaluate_bindings_planned, evaluate_bindings_since,
    evaluate_bindings_since_planned, Constraint,
};
use p2p_relational::{key_hash, Database, FxHashMap, FxHashSet, NullFactory, Tuple, Val};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

pub use p2p_relational::query::{CompiledBody, EvalMetrics};

/// Evaluates one body fragment over a local database, returning rows over
/// `part.vars` (deduplicated, deterministic order).
pub fn eval_part(part: &BodyPart, db: &Database) -> CoreResult<Vec<Tuple>> {
    let bindings = evaluate_bindings(&part.atoms, &part.local_constraints, db)?;
    let head_terms: Vec<Term> = part.vars.iter().cloned().map(Term::Var).collect();
    Ok(bindings.project(&head_terms)?)
}

/// Delta evaluation of one body fragment: the rows over `part.vars`
/// derivable using at least one fact inserted at or after `watermarks`
/// (semi-naive, see [`evaluate_bindings_since`]). Always a subset of
/// [`eval_part`] on the same database; together with the rows shipped before
/// the watermark was taken it covers [`eval_part`] exactly — which is what
/// lets wave answers ship deltas instead of full extensions.
pub fn eval_part_delta(
    part: &BodyPart,
    db: &Database,
    watermarks: &BTreeMap<Arc<str>, usize>,
) -> CoreResult<Vec<Tuple>> {
    let bindings = evaluate_bindings_since(&part.atoms, &part.local_constraints, db, watermarks)?;
    let head_terms: Vec<Term> = part.vars.iter().cloned().map(Term::Var).collect();
    Ok(bindings.project(&head_terms)?)
}

/// Compiles one body fragment into a [`CompiledBody`] (full plan plus one
/// semi-naive delta plan per atom) for the plan cache in
/// [`crate::peer::DbPeer`].
pub fn compile_part(part: &BodyPart, db: &Database) -> CoreResult<CompiledBody> {
    Ok(CompiledBody::compile(
        &part.atoms,
        &part.local_constraints,
        db,
    )?)
}

/// Plan-based [`eval_part`]: same rows, but the plan is reused across calls
/// and (with `use_indexes`) joins probe the relations' persistent indexes.
pub fn eval_part_planned(
    body: &CompiledBody,
    part: &BodyPart,
    db: &mut Database,
    use_indexes: bool,
    metrics: &mut EvalMetrics,
) -> CoreResult<Vec<Tuple>> {
    let bindings = evaluate_bindings_planned(&body.full, db, use_indexes, metrics)?;
    let head_terms: Vec<Term> = part.vars.iter().cloned().map(Term::Var).collect();
    Ok(bindings.project(&head_terms)?)
}

/// Plan-based [`eval_part_delta`]: the delta atom scans only its
/// post-watermark suffix, so cost is proportional to the delta.
pub fn eval_part_delta_planned(
    body: &CompiledBody,
    part: &BodyPart,
    db: &mut Database,
    watermarks: &BTreeMap<Arc<str>, usize>,
    use_indexes: bool,
    metrics: &mut EvalMetrics,
) -> CoreResult<Vec<Tuple>> {
    let bindings = evaluate_bindings_since_planned(body, db, watermarks, use_indexes, metrics)?;
    let head_terms: Vec<Term> = part.vars.iter().cloned().map(Term::Var).collect();
    Ok(bindings.project(&head_terms)?)
}

/// A set of rows tagged with their variable names.
#[derive(Debug, Clone, Default)]
pub struct VarRows {
    /// Column variables.
    pub vars: Vec<Arc<str>>,
    /// Rows over `vars`.
    pub rows: Vec<Tuple>,
}

/// Joins fragment extensions on their shared variables and filters by the
/// rule's join constraints; returns full bindings over the union of the
/// variables.
pub fn join_parts(parts: &[VarRows], join_constraints: &[Constraint]) -> VarRows {
    let mut acc: VarRows = match parts.first() {
        Some(first) => first.clone(),
        None => return VarRows::default(),
    };
    for part in &parts[1..] {
        acc = hash_join(&acc, part);
        if acc.rows.is_empty() {
            break;
        }
    }
    // Apply the cross-fragment constraints.
    if !join_constraints.is_empty() {
        let idx_of: HashMap<&Arc<str>, usize> =
            acc.vars.iter().enumerate().map(|(i, v)| (v, i)).collect();
        acc.rows.retain(|row| {
            join_constraints.iter().all(|c| {
                let val = |t: &Term| -> Val {
                    match t {
                        Term::Const(c) => *c,
                        Term::Var(v) => row.0[idx_of[v]],
                    }
                };
                c.op.certainly_holds(&val(&c.lhs), &val(&c.rhs))
            })
        });
    }
    acc
}

/// One fragment's state at the head node during delta-driven rounds: the
/// accumulated full extension plus the rows that arrived this round.
#[derive(Debug, Clone, Default)]
pub struct PartDelta {
    /// Accumulated extension across all rounds so far (including `delta`).
    pub full: VarRows,
    /// Rows new this round (subset of `full.rows`).
    pub delta: VarRows,
}

/// Semi-naive join expansion over fragments with per-round deltas: for each
/// fragment, joins its *delta* against the other fragments' accumulated
/// *fulls*, and unions the per-fragment results (deduplicated). Any binding
/// using at least one new row is produced; bindings entirely over old rows
/// were produced in an earlier round. Fragments whose delta is empty
/// contribute no term of their own but still participate as fulls.
pub fn join_parts_seminaive(parts: &[PartDelta], join_constraints: &[Constraint]) -> VarRows {
    let mut out = VarRows::default();
    let mut seen: std::collections::HashSet<Tuple> = std::collections::HashSet::new();
    for (i, p) in parts.iter().enumerate() {
        if p.delta.rows.is_empty() {
            continue;
        }
        let staged: Vec<VarRows> = parts
            .iter()
            .enumerate()
            .map(|(j, q)| {
                if i == j {
                    p.delta.clone()
                } else {
                    q.full.clone()
                }
            })
            .collect();
        let joined = join_parts(&staged, join_constraints);
        if out.vars.is_empty() {
            out.vars = joined.vars;
        } else {
            debug_assert_eq!(out.vars, joined.vars);
        }
        for row in joined.rows {
            if seen.insert(row.clone()) {
                out.rows.push(row);
            }
        }
    }
    out
}

fn hash_join(left: &VarRows, right: &VarRows) -> VarRows {
    // Shared variables and the right-only variables to append.
    let shared: Vec<(usize, usize)> = left
        .vars
        .iter()
        .enumerate()
        .filter_map(|(li, v)| right.vars.iter().position(|rv| rv == v).map(|ri| (li, ri)))
        .collect();
    let right_only: Vec<usize> = (0..right.vars.len())
        .filter(|ri| !shared.iter().any(|(_, r)| r == ri))
        .collect();

    let mut out_vars = left.vars.clone();
    out_vars.extend(right_only.iter().map(|&ri| right.vars[ri].clone()));

    // Hash the right side on the shared projection — `u64` key hashes with
    // candidate lists; collisions are resolved by re-comparing the shared
    // columns at probe time, so no per-row key allocation happens.
    let mut index: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
    for (pos, row) in right.rows.iter().enumerate() {
        let hash = key_hash(shared.iter().map(|&(_, ri)| &row.0[ri]));
        index.entry(hash).or_default().push(pos);
    }

    let mut out_rows = Vec::new();
    let mut seen: FxHashSet<Tuple> = FxHashSet::default();
    let mut vals: Vec<Val> = Vec::new();
    for lrow in &left.rows {
        let hash = key_hash(shared.iter().map(|&(li, _)| &lrow.0[li]));
        let Some(matches) = index.get(&hash) else {
            continue;
        };
        for &pos in matches {
            let rrow = &right.rows[pos];
            if shared.iter().any(|&(li, ri)| lrow.0[li] != rrow.0[ri]) {
                continue; // Hash collision on the shared projection.
            }
            vals.clear();
            vals.extend_from_slice(&lrow.0);
            vals.extend(right_only.iter().map(|&ri| rrow.0[ri]));
            let t = Tuple::from_row(&vals);
            if seen.insert(t.clone()) {
                out_rows.push(t);
            }
        }
    }
    VarRows {
        vars: out_vars,
        rows: out_rows,
    }
}

/// Applies a rule's head to `head_db` for every joined binding. Returns the
/// aggregate chase outcome.
pub fn apply_rule_head(
    rule: &CoordinationRule,
    bindings: &VarRows,
    head_db: &mut Database,
    nulls: &mut NullFactory,
    chase: &mut ChaseState,
    cfg: &ChaseConfig,
) -> CoreResult<ChaseOutcome> {
    let mut total = ChaseOutcome::default();
    for row in &bindings.rows {
        let map: HashMap<Arc<str>, Val> = bindings
            .vars
            .iter()
            .cloned()
            .zip(row.values().copied())
            .collect();
        let out = apply_head(head_db, &rule.head, &map, nulls, chase, cfg)?;
        total.nulls_minted += out.nulls_minted;
        total.inserted.extend(out.inserted);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::CoordinationRule;
    use p2p_relational::DatabaseSchema;
    use p2p_topology::NodeId;

    fn resolve(s: &str) -> Option<NodeId> {
        match s {
            "A" => Some(NodeId(0)),
            "B" => Some(NodeId(1)),
            "C" => Some(NodeId(2)),
            _ => None,
        }
    }

    fn vr(vars: &[&str], rows: &[&[i64]]) -> VarRows {
        VarRows {
            vars: vars.iter().map(|v| Arc::from(*v)).collect(),
            rows: rows
                .iter()
                .map(|r| Tuple::new(r.iter().map(|&v| Val::Int(v)).collect()))
                .collect(),
        }
    }

    #[test]
    fn join_on_shared_variable() {
        let left = vr(&["X", "Y"], &[&[1, 2], &[3, 4]]);
        let right = vr(&["Y", "Z"], &[&[2, 9], &[2, 8], &[5, 7]]);
        let out = join_parts(&[left, right], &[]);
        assert_eq!(
            out.vars,
            vec![Arc::<str>::from("X"), Arc::from("Y"), Arc::from("Z")]
        );
        assert_eq!(out.rows.len(), 2); // (1,2,9), (1,2,8)
    }

    #[test]
    fn join_without_shared_vars_is_cross_product() {
        let left = vr(&["X"], &[&[1], &[2]]);
        let right = vr(&["Y"], &[&[7], &[8]]);
        let out = join_parts(&[left, right], &[]);
        assert_eq!(out.rows.len(), 4);
    }

    #[test]
    fn join_constraints_filter() {
        use p2p_relational::query::ast::CmpOp;
        let left = vr(&["X"], &[&[1], &[5]]);
        let right = vr(&["Y"], &[&[3]]);
        let c = Constraint {
            lhs: Term::var("X"),
            op: CmpOp::Lt,
            rhs: Term::var("Y"),
        };
        let out = join_parts(&[left, right], &[c]);
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].0[0], Val::Int(1));
    }

    #[test]
    fn empty_parts_join_to_empty() {
        assert!(join_parts(&[], &[]).rows.is_empty());
        let left = vr(&["X"], &[]);
        let right = vr(&["X"], &[&[1]]);
        assert!(join_parts(&[left, right], &[]).rows.is_empty());
    }

    #[test]
    fn eval_part_projects_part_vars() {
        let mut db = Database::new(DatabaseSchema::parse("b(x: int, y: int).").unwrap());
        db.insert_values("b", vec![Val::Int(1), Val::Int(2)])
            .unwrap();
        db.insert_values("b", vec![Val::Int(1), Val::Int(3)])
            .unwrap();
        let rule =
            CoordinationRule::parse("r", "B:b(X,Y), B:b(Y,Z) => A:a(X,Z)", None, &resolve).unwrap();
        let rows = eval_part(&rule.parts[0], &db).unwrap();
        // Vars X, Y, Z (first-occurrence order); b(1,2)⋈b(2,…) empty; only
        // chains… b(1,2),b(2,?) none; b(1,3),b(3,?) none → 0 rows? No wait:
        // rows are over the *part* whose atoms are both b-atoms: bindings
        // where b(X,Y) and b(Y,Z) both hold: none here.
        assert!(rows.is_empty());
        db.insert_values("b", vec![Val::Int(2), Val::Int(9)])
            .unwrap();
        let rows = eval_part(&rule.parts[0], &db).unwrap();
        assert_eq!(rows.len(), 1); // X=1, Y=2, Z=9
        assert_eq!(rows[0].arity(), 3);
    }

    #[test]
    fn seminaive_join_covers_exactly_the_new_bindings() {
        // Full join "before": X–Y from part 1, Y–Z from part 2.
        let left_old = vr(&["X", "Y"], &[&[1, 2]]);
        let right_old = vr(&["Y", "Z"], &[&[2, 9]]);
        let before = join_parts(&[left_old.clone(), right_old.clone()], &[]);
        assert_eq!(before.rows.len(), 1);

        // A delta arrives on each side.
        let left_full = vr(&["X", "Y"], &[&[1, 2], &[3, 2]]);
        let left_delta = vr(&["X", "Y"], &[&[3, 2]]);
        let right_full = vr(&["Y", "Z"], &[&[2, 9], &[2, 8]]);
        let right_delta = vr(&["Y", "Z"], &[&[2, 8]]);
        let new = join_parts_seminaive(
            &[
                PartDelta {
                    full: left_full.clone(),
                    delta: left_delta,
                },
                PartDelta {
                    full: right_full.clone(),
                    delta: right_delta,
                },
            ],
            &[],
        );
        // (old ∪ new) == full join of the full extensions.
        let full = join_parts(&[left_full, right_full], &[]);
        let mut union: std::collections::HashSet<Tuple> = before.rows.into_iter().collect();
        union.extend(new.rows.iter().cloned());
        let expect: std::collections::HashSet<Tuple> = full.rows.into_iter().collect();
        assert_eq!(union, expect);
        // The purely-old combination (1,2,9) is not re-derived.
        assert!(!new
            .rows
            .contains(&Tuple::new(vec![Val::Int(1), Val::Int(2), Val::Int(9)])));
    }

    #[test]
    fn seminaive_join_with_all_deltas_empty_is_empty() {
        let left = vr(&["X", "Y"], &[&[1, 2]]);
        let right = vr(&["Y", "Z"], &[&[2, 9]]);
        let out = join_parts_seminaive(
            &[
                PartDelta {
                    full: left,
                    delta: vr(&["X", "Y"], &[]),
                },
                PartDelta {
                    full: right,
                    delta: vr(&["Y", "Z"], &[]),
                },
            ],
            &[],
        );
        assert!(out.rows.is_empty());
    }

    #[test]
    fn eval_part_delta_is_subset_completing_the_old_eval() {
        let mut db = Database::new(DatabaseSchema::parse("b(x: int, y: int).").unwrap());
        db.insert_values("b", vec![Val::Int(1), Val::Int(2)])
            .unwrap();
        let rule =
            CoordinationRule::parse("r", "B:b(X,Y), B:b(Y,Z) => A:a(X,Z)", None, &resolve).unwrap();
        let before = eval_part(&rule.parts[0], &db).unwrap();
        let w = db.watermarks();
        db.insert_values("b", vec![Val::Int(2), Val::Int(9)])
            .unwrap();
        let delta = eval_part_delta(&rule.parts[0], &db, &w).unwrap();
        let after = eval_part(&rule.parts[0], &db).unwrap();
        let mut union: std::collections::HashSet<Tuple> = before.into_iter().collect();
        union.extend(delta);
        assert_eq!(union, after.into_iter().collect());
    }

    #[test]
    fn apply_rule_head_chases_each_binding() {
        let rule = CoordinationRule::parse("r", "B:b(X,Y) => A:a(X,Y)", None, &resolve).unwrap();
        let mut head_db = Database::new(DatabaseSchema::parse("a(x: int, y: int).").unwrap());
        let mut nulls = NullFactory::new(0);
        let mut chase = ChaseState::new();
        let cfg = ChaseConfig::default();
        let bindings = vr(&["X", "Y"], &[&[1, 2], &[3, 4]]);
        let out =
            apply_rule_head(&rule, &bindings, &mut head_db, &mut nulls, &mut chase, &cfg).unwrap();
        assert_eq!(out.inserted.len(), 2);
        // Idempotent.
        let out2 =
            apply_rule_head(&rule, &bindings, &mut head_db, &mut nulls, &mut chase, &cfg).unwrap();
        assert!(out2.is_empty());
    }
}
