//! Network description files.
//!
//! Section 5: the super-peer "can read coordination rules for all peers
//! from a file and broadcast this file to all peers on the network … This is
//! extremely convenient for running multiple experiments on different
//! topologies." This module is that file format: a JSON document declaring
//! nodes (name, schema, base data) and coordination rules, loadable into a
//! [`crate::system::P2PSystemBuilder`] and exportable from a running
//! system's snapshot.
//!
//! ```json
//! {
//!   "super_peer": 0,
//!   "nodes": [
//!     { "id": 0, "name": "A", "schema": "a(x: int, y: int).", "data": {} },
//!     { "id": 1, "name": "B", "schema": "b(x: int, y: int).",
//!       "data": { "b": [[{"Int":1},{"Int":2}]] } }
//!   ],
//!   "rules": [ { "name": "r1", "text": "B:b(X,Y) => A:a(X,Y)" } ]
//! }
//! ```

use crate::error::{CoreError, CoreResult};
use crate::system::P2PSystemBuilder;
use p2p_relational::{Database, Value};
use p2p_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One node declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeDecl {
    /// Numeric node id (unique).
    pub id: u32,
    /// Name used in rule texts (defaults to the letter form when omitted).
    #[serde(default)]
    pub name: Option<String>,
    /// Schema in the textual form `rel(col: type, ...).`.
    pub schema: String,
    /// Base data: relation name → rows (each row a list of values).
    #[serde(default)]
    pub data: BTreeMap<String, Vec<Vec<Value>>>,
}

/// One coordination rule declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleDecl {
    /// Unique rule name.
    pub name: String,
    /// Rule text in the paper notation, e.g. `B:b(X,Y) => A:a(X,Y)`.
    pub text: String,
}

/// A whole network description.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkFile {
    /// The super-peer's node id (defaults to 0).
    #[serde(default)]
    pub super_peer: u32,
    /// Node declarations.
    pub nodes: Vec<NodeDecl>,
    /// Rule declarations.
    pub rules: Vec<RuleDecl>,
}

impl NetworkFile {
    /// Parses a JSON document.
    pub fn from_json(text: &str) -> CoreResult<Self> {
        serde_json::from_str(text)
            .map_err(|e| CoreError::MalformedRule(format!("network file: {e}")))
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("network files are plain data")
    }

    /// Builds a [`P2PSystemBuilder`] from this description (nodes first,
    /// then data, then rules — every step validated).
    pub fn into_builder(&self) -> CoreResult<P2PSystemBuilder> {
        let mut b = P2PSystemBuilder::new();
        for node in &self.nodes {
            match &node.name {
                Some(name) => b.add_named_node(name, node.id, &node.schema)?,
                None => b.add_node_with_schema(node.id, &node.schema)?,
            }
        }
        for node in &self.nodes {
            for (relation, rows) in &node.data {
                for row in rows {
                    b.insert(node.id, relation, row.clone())?;
                }
            }
        }
        for rule in &self.rules {
            b.add_rule(&rule.name, &rule.text)?;
        }
        b.set_super_peer(self.super_peer);
        Ok(b)
    }

    /// Exports a network description from databases (e.g. a system snapshot)
    /// plus rule texts. Relation instances become base data, so loading the
    /// export replays the materialised state.
    pub fn from_databases(
        super_peer: NodeId,
        databases: &BTreeMap<NodeId, Database>,
        rules: &crate::rule::RuleSet,
    ) -> Self {
        let nodes = databases
            .iter()
            .map(|(id, db)| {
                let mut data: BTreeMap<String, Vec<Vec<Value>>> = BTreeMap::new();
                for (rel_name, rel) in db.relations() {
                    if rel.is_empty() {
                        continue;
                    }
                    data.insert(
                        rel_name.to_string(),
                        rel.iter()
                            .map(|row| row.iter().map(|v| v.to_value()).collect())
                            .collect(),
                    );
                }
                NodeDecl {
                    id: id.0,
                    name: Some(id.letter()),
                    schema: db.schema().to_string(),
                    data,
                }
            })
            .collect();
        let rules = rules
            .iter()
            .map(|r| RuleDecl {
                name: r.name.to_string(),
                // Display form round-trips through the parser.
                text: r
                    .to_string()
                    .split_once(": ")
                    .map(|(_, t)| t.to_string())
                    .unwrap_or_default(),
            })
            .collect();
        NetworkFile {
            super_peer: super_peer.0,
            nodes,
            rules,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "super_peer": 0,
        "nodes": [
            { "id": 0, "schema": "a(x: int, y: int)." },
            { "id": 1, "schema": "b(x: int, y: int).",
              "data": { "b": [[{"Int":1},{"Int":2}], [{"Int":3},{"Int":4}]] } }
        ],
        "rules": [ { "name": "r1", "text": "B:b(X,Y) => A:a(X,Y)" } ]
    }"#;

    #[test]
    fn load_build_run() {
        let file = NetworkFile::from_json(SAMPLE).unwrap();
        let mut sys = file.into_builder().unwrap().build().unwrap();
        let report = sys.run_update();
        assert!(report.all_closed);
        assert_eq!(
            sys.database(NodeId(0))
                .unwrap()
                .relation("a")
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn json_round_trip() {
        let file = NetworkFile::from_json(SAMPLE).unwrap();
        let reparsed = NetworkFile::from_json(&file.to_json()).unwrap();
        assert_eq!(file, reparsed);
    }

    #[test]
    fn export_replays_materialised_state() {
        let file = NetworkFile::from_json(SAMPLE).unwrap();
        let mut sys = file.into_builder().unwrap().build().unwrap();
        sys.run_update();

        // Export the post-update snapshot, reload, and verify A's data is
        // base data now.
        let export = NetworkFile::from_databases(sys.super_peer(), &sys.snapshot().0, sys.rules());
        let sys2 = export.into_builder().unwrap().build().unwrap();
        assert_eq!(
            sys2.database(NodeId(0))
                .unwrap()
                .relation("a")
                .unwrap()
                .len(),
            2
        );
        // Rules survived the round trip.
        assert_eq!(sys2.rules().len(), 1);
    }

    #[test]
    fn malformed_json_is_a_clean_error() {
        assert!(NetworkFile::from_json("{ nope").is_err());
    }

    #[test]
    fn bad_rule_text_fails_at_build() {
        let mut file = NetworkFile::from_json(SAMPLE).unwrap();
        file.rules[0].text = "Z:zzz(X) => A:a(X, X)".into();
        assert!(file.into_builder().is_err());
    }

    #[test]
    fn named_nodes_resolve_in_rules() {
        let text = r#"{
            "nodes": [
                { "id": 0, "name": "hub", "schema": "a(x: int)." },
                { "id": 1, "name": "leaf", "schema": "b(x: int)derp" }
            ],
            "rules": []
        }"#;
        // Schema typo must surface as a parse error.
        let file = NetworkFile::from_json(text).unwrap();
        assert!(file.into_builder().is_err());

        let good = r#"{
            "nodes": [
                { "id": 0, "name": "hub", "schema": "a(x: int)." },
                { "id": 1, "name": "leaf", "schema": "b(x: int)." }
            ],
            "rules": [ { "name": "r", "text": "leaf:b(X) => hub:a(X)" } ]
        }"#;
        let file = NetworkFile::from_json(good).unwrap();
        assert!(file.into_builder().is_ok());
    }
}
