//! The eager (asynchronous) distributed update — algorithms A4–A6 of the
//! paper with subscription-based re-answering.
//!
//! Data plane: the head node of each rule sends `Query` to the rule's body
//! nodes (carrying the fragment and the `SN` path, A4); a queried node
//! answers with its fragment's current extension and **subscribes** the
//! asker (the paper's `owner` array); every time a node's local database
//! grows it re-answers all its subscribers (A5's trailing `foreach`), with
//! deltas when the delta optimization is on. Loops quiesce because answers
//! only flow when they carry something new — the paper's "node N stops
//! propagating a result set R iff N is contained in the path … and there is
//! no new data in R".
//!
//! Closure: answers carry the sender's `state_u` (A5's completeness flag);
//! a node closes bottom-up when all its rules' fragments are complete (the
//! `Rules` flag criterion of Lemma 1), which resolves all of any acyclic
//! region. Cyclic regions cannot self-certify this way; there the
//! super-peer's Dijkstra–Scholten detector (see
//! [`crate::termination`]) observes global quiescence and broadcasts
//! `Fixpoint`, standing in for the paper's maximal-dependency-path flags
//! (DESIGN.md §3, substitution 3).

use crate::messages::ProtocolMsg;
use crate::peer::DbPeer;
use crate::rule::{BodyPart, RuleId};
use crate::stats::ClosedBy;
use p2p_net::Context;
use p2p_relational::Tuple;
use p2p_topology::NodeId;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

type Watermarks = BTreeMap<Arc<str>, usize>;

/// Progress of one rule fragment at the head node.
#[derive(Debug, Clone, Default)]
pub struct PartProgress {
    /// Fragment variables (column order of `rows`).
    pub vars: Vec<Arc<str>>,
    /// Accumulated extension, in arrival order.
    pub rows: Vec<Tuple>,
    /// Fast membership for `rows`.
    pub row_set: HashSet<Tuple>,
    /// The body node reported `state_u == closed` (paper's rule flag).
    pub complete: bool,
    /// At least one answer arrived.
    pub received: bool,
}

/// A subscription served to a rule's head node (body side).
#[derive(Debug, Clone)]
pub struct Subscription {
    /// The fragment to evaluate for this subscriber.
    pub part: BodyPart,
    /// Rows already shipped (delta base).
    pub sent: HashSet<Tuple>,
    /// Whether the last answer carried `complete = true`.
    pub sent_complete: bool,
    /// Database watermarks as of the last fragment evaluation for this
    /// subscriber. With `SystemConfig::delta_waves`, re-answers
    /// delta-evaluate the fragment from here instead of re-running the full
    /// conjunctive query — the hot-path saving on every cascade.
    pub watermarks: Watermarks,
}

/// Eager-mode update session state.
#[derive(Debug, Clone, Default)]
pub struct EagerState {
    /// Session epoch.
    pub epoch: u32,
    /// A session is in progress (or finished) at this node.
    pub active: bool,
    /// The start-request flood passed through here.
    pub flood_seen: bool,
    /// `state_u == closed`.
    pub closed: bool,
    /// Per-(rule, body node) fragment progress.
    pub parts: BTreeMap<(RuleId, NodeId), PartProgress>,
    /// Subscriptions served, keyed by (subscriber, rule).
    pub subs: BTreeMap<(NodeId, RuleId), Subscription>,
    /// Highest fix-point broadcast generation processed.
    pub fixpoint_gen: u32,
    /// A dynamic change touched this node (rule added/removed here, or a
    /// reopen reached it). From then on the per-rule-flags early closure is
    /// disabled for the epoch: a dynamically created dependency cycle would
    /// otherwise let close/reopen notification waves chase each other around
    /// the ring forever (each member re-closing on its predecessor's stale
    /// completeness). Closure then comes from the root's fix-point
    /// broadcast, which is always sound.
    pub suppress_flag_closure: bool,
}

impl DbPeer {
    /// Starts (or joins) the update session for `epoch`. `sn_base` is the
    /// path of the query that caused the node to join (empty when joining
    /// via flood or as the initiator). Returns true if a new session began.
    pub(crate) fn begin_epoch(
        &mut self,
        epoch: u32,
        ctx: &mut Context<ProtocolMsg>,
        sn_base: &[NodeId],
    ) -> bool {
        if self.upd.active && self.upd.epoch >= epoch {
            return false;
        }
        self.upd = EagerState {
            epoch,
            active: true,
            flood_seen: false,
            closed: self.rules.is_empty(),
            parts: BTreeMap::new(),
            subs: BTreeMap::new(),
            fixpoint_gen: 0,
            suppress_flag_closure: false,
        };
        if self.upd.closed {
            // A node with no rules is trivially at its fix-point.
            self.stats.closed_by = ClosedBy::RulesFlags;
        } else {
            self.stats.closed_by = ClosedBy::Open;
        }
        let rules: Vec<_> = self.rules.values().cloned().collect();
        for rule in &rules {
            for part in &rule.parts {
                self.upd.parts.insert(
                    (rule.id, part.node),
                    PartProgress {
                        vars: part.vars.clone(),
                        ..Default::default()
                    },
                );
            }
        }
        self.issue_queries(&rules, ctx, sn_base);
        // Crash recovery: give any still-unanswered resync request another
        // chance with the new epoch (at-least-once; see `durability`).
        self.resend_pending_resyncs(ctx);
        true
    }

    fn issue_queries(
        &mut self,
        rules: &[crate::rule::CoordinationRule],
        ctx: &mut Context<ProtocolMsg>,
        sn_base: &[NodeId],
    ) {
        let mut sn = sn_base.to_vec();
        sn.push(self.id);
        let epoch = self.upd.epoch;
        for rule in rules {
            for part in &rule.parts {
                self.stats.queries_sent += 1;
                self.send_basic(
                    ctx,
                    part.node,
                    ProtocolMsg::Query {
                        epoch,
                        rule: rule.id,
                        part: part.clone(),
                        sn: sn.clone(),
                    },
                );
            }
        }
    }

    /// Handles the flooded global update request.
    pub(crate) fn on_update_flood(
        &mut self,
        from: NodeId,
        epoch: u32,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        if self.upd.active && epoch < self.upd.epoch {
            return;
        }
        self.add_pipe(from);
        self.begin_epoch(epoch, ctx, &[]);
        if !self.upd.flood_seen {
            self.upd.flood_seen = true;
            for p in self.pipes.clone() {
                if p != from {
                    self.send_basic(ctx, p, ProtocolMsg::UpdateFlood { epoch });
                }
            }
        }
    }

    /// A4 — `Query(IDs, Q, SN)`.
    pub(crate) fn on_query(
        &mut self,
        from: NodeId,
        epoch: u32,
        rule: RuleId,
        part: BodyPart,
        sn: Vec<NodeId>,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.stats.queries_received += 1;
        if self.upd.active && epoch < self.upd.epoch {
            return;
        }
        self.add_pipe(from);
        // Joining via a query = A4's forwarding: our own queries extend SN.
        self.begin_epoch(epoch, ctx, &sn);

        if self.upd.subs.contains_key(&(from, rule)) {
            self.stats.duplicate_queries += 1;
        }
        let mut sub = Subscription {
            part,
            sent: HashSet::new(),
            sent_complete: false,
            watermarks: Watermarks::new(),
        };
        let rows = self.eval_part_local(&sub.part.clone(), ctx);
        sub.watermarks = self.db.watermarks();
        let complete = self.upd.closed;
        let ship: Vec<Tuple> = rows.clone();
        sub.sent.extend(rows);
        sub.sent_complete = complete;
        self.stats.answers_sent += 1;
        self.stats.rows_shipped += ship.len() as u64;
        let payload = self.make_answer_rows(from, &sub.part.vars.clone(), ship);
        self.upd.subs.insert((from, rule), sub);
        self.send_basic(
            ctx,
            from,
            ProtocolMsg::Answer {
                epoch,
                rule,
                rows: payload,
                complete,
                reopen: false,
            },
        );
    }

    /// A5 — `Answer(ID, QA, SN, state)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_answer(
        &mut self,
        from: NodeId,
        epoch: u32,
        rule: RuleId,
        rows: crate::messages::AnswerRows,
        complete: bool,
        reopen: bool,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.stats.answers_received += 1;
        if !self.upd.active || epoch != self.upd.epoch {
            return;
        }
        self.absorb_dict(from, &rows);
        self.absorb_null_depths(&rows);
        // Durable peers log the processed answer (rows + the answerer's
        // watermarks — the crash-resync cursor).
        self.log_answer_mark(rule, from, &rows);
        let Some(part) = self.upd.parts.get_mut(&(rule, from)) else {
            // The rule was deleted while the answer was in flight.
            return;
        };
        let first = !part.received;
        part.received = true;
        let mut grew = false;
        for t in rows.rows {
            if part.row_set.insert(t.clone()) {
                part.rows.push(t);
                grew = true;
            }
        }
        if reopen {
            part.complete = false;
            self.upd.suppress_flag_closure = true;
            self.reopen_if_closed(ctx);
        } else if complete {
            part.complete = true;
        }
        if grew || first {
            let inserted = self.recompute_rule(rule);
            if inserted > 0 {
                // New local facts: cascade to subscribers (A5's trailing
                // `foreach node ∈ π₁(owner)`).
                self.reopen_if_closed(ctx);
                self.push_deltas(ctx);
            }
        }
        self.maybe_close_by_rules(ctx);
    }

    /// A6 applied to one rule: joins accumulated fragments and chases.
    pub(crate) fn recompute_rule(&mut self, rule_id: RuleId) -> usize {
        let Some(rule) = self.rules.get(&rule_id) else {
            return 0;
        };
        let mut parts = Vec::with_capacity(rule.parts.len());
        for part in &rule.parts {
            let Some(progress) = self.upd.parts.get(&(rule_id, part.node)) else {
                return 0;
            };
            if !progress.received {
                return 0;
            }
            parts.push(crate::joins::VarRows {
                vars: progress.vars.clone(),
                rows: progress.rows.clone(),
            });
        }
        self.apply_rule(rule_id, parts)
    }

    /// Re-answers subscribers whose fragment result changed.
    ///
    /// With `delta_waves` (and the delta optimization) on, the fragment is
    /// **delta-evaluated** from the subscription's watermarks — only
    /// bindings using facts inserted since the last answer are computed —
    /// instead of re-running the full conjunctive query on every cascade.
    /// The `sent` filter stays as the exactness layer: delta evaluation may
    /// re-derive an already-shipped row from a new fact.
    pub(crate) fn push_deltas(&mut self, ctx: &mut Context<ProtocolMsg>) {
        let keys: Vec<(NodeId, RuleId)> = self.upd.subs.keys().copied().collect();
        let epoch = self.upd.epoch;
        let delta_eval = self.config.delta_waves && self.config.delta_optimization;
        for key in keys {
            let part = self.upd.subs[&key].part.clone();
            let rows = if delta_eval {
                let watermarks = self.upd.subs[&key].watermarks.clone();
                self.eval_part_delta_local(&part, &watermarks, ctx)
            } else {
                self.eval_part_local(&part, ctx)
            };
            let marks = self.db.watermarks();
            let closed = self.upd.closed;
            let Some(sub) = self.upd.subs.get_mut(&key) else {
                continue;
            };
            sub.watermarks = marks;
            let delta: Vec<Tuple> = rows
                .iter()
                .filter(|t| !sub.sent.contains(*t))
                .cloned()
                .collect();
            let completeness_news = closed && !sub.sent_complete;
            if delta.is_empty() && !completeness_news {
                continue;
            }
            sub.sent.extend(rows.iter().cloned());
            sub.sent_complete = closed;
            let ship = if self.config.delta_optimization {
                delta
            } else {
                rows
            };
            if delta_eval {
                // What a full re-ship would have re-sent: the whole current
                // extension, which (by monotonicity) is exactly `sent`.
                self.stats.delta_answers_sent += 1;
                self.stats.rows_saved += (sub.sent.len() - ship.len()) as u64;
            }
            self.stats.answers_sent += 1;
            self.stats.rows_shipped += ship.len() as u64;
            let payload = self.make_answer_rows(key.0, &part.vars, ship);
            self.send_basic(
                ctx,
                key.0,
                ProtocolMsg::Answer {
                    epoch,
                    rule: key.1,
                    rows: payload,
                    complete: closed,
                    reopen: false,
                },
            );
        }
    }

    /// Lemma 1's `Rules` criterion: every fragment of every rule reported
    /// final data.
    pub(crate) fn maybe_close_by_rules(&mut self, ctx: &mut Context<ProtocolMsg>) {
        if self.upd.closed
            || !self.upd.active
            || self.upd.suppress_flag_closure
            || !self.pending_resync.is_empty()
        {
            return;
        }
        let all_complete = self
            .rules
            .values()
            .flat_map(|r| r.parts.iter().map(move |p| (r.id, p.node)))
            .all(|key| {
                self.upd
                    .parts
                    .get(&key)
                    .map(|p| p.complete)
                    .unwrap_or(false)
            });
        if all_complete {
            self.close(ClosedBy::RulesFlags, ctx);
        }
    }

    /// Sets `state_u = closed` and (unless closed by the terminal broadcast,
    /// after which nobody is listening) ships final completeness answers.
    pub(crate) fn close(&mut self, by: ClosedBy, ctx: &mut Context<ProtocolMsg>) {
        self.upd.closed = true;
        self.stats.closed_by = by;
        if by != ClosedBy::RootBroadcast {
            self.push_deltas(ctx);
        }
    }

    /// Re-opens after a dynamic change (or defensively when data arrives
    /// post-closure) and cascades the invalidation to subscribers.
    pub(crate) fn reopen_if_closed(&mut self, ctx: &mut Context<ProtocolMsg>) {
        if !self.upd.closed {
            return;
        }
        self.upd.closed = false;
        self.upd.suppress_flag_closure = true;
        self.stats.reopened += 1;
        self.stats.closed_by = ClosedBy::Open;
        let epoch = self.upd.epoch;
        let keys: Vec<(NodeId, RuleId)> = self.upd.subs.keys().copied().collect();
        for key in keys {
            // Only subscribers that saw `complete = true` hold stale
            // completeness to invalidate.
            let needs_reopen = match self.upd.subs.get_mut(&key) {
                Some(sub) if sub.sent_complete => {
                    sub.sent_complete = false;
                    true
                }
                _ => false,
            };
            if !needs_reopen {
                continue;
            }
            self.stats.answers_sent += 1;
            self.send_basic(
                ctx,
                key.0,
                ProtocolMsg::Answer {
                    epoch,
                    rule: key.1,
                    rows: Default::default(),
                    complete: false,
                    reopen: true,
                },
            );
        }
    }

    /// Fix-point broadcast from the super-peer.
    pub(crate) fn on_fixpoint(&mut self, epoch: u32, generation: u32) {
        if !self.upd.active {
            // The session never reached this node (no pipes connect it to
            // the super-peer's component). A rule-less node is trivially at
            // its fix-point and may close; a node *with* rules in a
            // disconnected component genuinely was not updated and must
            // stay open (Lemma 1: closed ⇔ fix-point reached *here*).
            if self.rules.is_empty() {
                self.upd = EagerState {
                    epoch,
                    active: true,
                    closed: true,
                    fixpoint_gen: generation,
                    ..Default::default()
                };
                self.stats.closed_by = ClosedBy::RootBroadcast;
            }
            return;
        }
        if epoch != self.upd.epoch || generation <= self.upd.fixpoint_gen {
            return;
        }
        self.upd.fixpoint_gen = generation;
        if !self.upd.closed && self.pending_resync.is_empty() {
            // A peer still reconciling a crash stays open — the driver sees
            // it and re-drives, which re-sends the resync. Closing here
            // would certify a fix-point with a silent hole if the resync
            // answer was lost.
            self.upd.closed = true;
            self.stats.closed_by = ClosedBy::RootBroadcast;
        }
    }

    /// Root side of the broadcast (invoked by the Dijkstra–Scholten hook).
    pub(crate) fn broadcast_fixpoint(&mut self, ctx: &mut Context<ProtocolMsg>) {
        self.sup.fixpoint_generation += 1;
        let generation = self.sup.fixpoint_generation;
        let epoch = self.upd.epoch;
        for n in self.sup.all_nodes.clone() {
            if n != self.id {
                ctx.send(n, ProtocolMsg::Fixpoint { epoch, generation });
            }
        }
        self.on_fixpoint(epoch, generation);
    }

    /// `addRule` notification (dynamic change, Section 4).
    pub(crate) fn on_add_rule(
        &mut self,
        rule: crate::rule::CoordinationRule,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        let parts: Vec<BodyPart> = rule.parts.clone();
        let rule_id = rule.id;
        let epoch = self.upd.epoch;
        self.install_rule(rule);
        if !self.upd.active {
            return; // Will be queried at the next session start.
        }
        self.upd.suppress_flag_closure = true;
        for part in &parts {
            self.upd.parts.insert(
                (rule_id, part.node),
                PartProgress {
                    vars: part.vars.clone(),
                    ..Default::default()
                },
            );
        }
        self.reopen_if_closed(ctx);
        let mut sn = vec![self.id];
        sn.shrink_to_fit();
        for part in parts {
            self.stats.queries_sent += 1;
            self.send_basic(
                ctx,
                part.node,
                ProtocolMsg::Query {
                    epoch,
                    rule: rule_id,
                    part,
                    sn: sn.clone(),
                },
            );
        }
    }

    /// `deleteRule` notification (dynamic change, Section 4). Previously
    /// imported data is kept — consistent with Definition 9 (see
    /// `crate::dynamic`).
    pub(crate) fn on_delete_rule(&mut self, rule_id: RuleId, ctx: &mut Context<ProtocolMsg>) {
        let Some(rule) = self.rules.remove(&rule_id) else {
            return;
        };
        // A pending resync for a deleted rule has nothing left to repair.
        self.pending_resync.retain(|(r, _), _| *r != rule_id);
        if self.upd.active {
            self.upd.suppress_flag_closure = true;
            let epoch = self.upd.epoch;
            for part in &rule.parts {
                self.upd.parts.remove(&(rule_id, part.node));
                self.send_basic(
                    ctx,
                    part.node,
                    ProtocolMsg::Unsubscribe {
                        epoch,
                        rule: rule_id,
                    },
                );
            }
            self.maybe_close_by_rules(ctx);
        }
    }

    /// Body-node side of `deleteRule`.
    pub(crate) fn on_unsubscribe(&mut self, from: NodeId, epoch: u32, rule: RuleId) {
        if self.upd.active && epoch == self.upd.epoch {
            self.upd.subs.remove(&(from, rule));
        }
    }
}
