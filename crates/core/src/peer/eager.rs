//! The eager (asynchronous) distributed update — algorithms A4–A6 of the
//! paper with subscription-based re-answering.
//!
//! Data plane: the head node of each rule sends `Query` to the rule's body
//! nodes (carrying the fragment and the `SN` path, A4); a queried node
//! answers with its fragment's current extension and **subscribes** the
//! asker (the paper's `owner` array); every time a node's local database
//! grows it re-answers all its subscribers (A5's trailing `foreach`), with
//! deltas when the delta optimization is on. Loops quiesce because answers
//! only flow when they carry something new — the paper's "node N stops
//! propagating a result set R iff N is contained in the path … and there is
//! no new data in R".
//!
//! All of this state is **per session** ([`EagerState`] lives inside
//! [`crate::peer::SessionState`]): concurrent sessions from different roots
//! keep separate fragment progress, subscriptions and closure flags over
//! the shared local database, so any number of initiators interleave
//! soundly — monotone inserts commute, and each global session's
//! subscription graph independently covers every rule.
//!
//! Closure: answers carry the sender's `state_u` (A5's completeness flag);
//! a node closes bottom-up when all its rules' fragments are complete (the
//! `Rules` flag criterion of Lemma 1), which resolves all of any acyclic
//! region. Cyclic regions cannot self-certify this way; there the session
//! root's Dijkstra–Scholten detector (see [`crate::termination`], one
//! instance per session) observes the session's quiescence and broadcasts
//! `Fixpoint`, standing in for the paper's maximal-dependency-path flags
//! (DESIGN.md §3, substitution 3). The broadcast also **retires** the
//! session's state everywhere — sound because Dijkstra–Scholten guarantees
//! no session traffic is still in flight at termination.

use crate::messages::ProtocolMsg;
use crate::peer::tables::VecMap;
use crate::peer::{DbPeer, SessionState};
use crate::rule::{BodyPart, RuleId};
use crate::stats::ClosedBy;
use p2p_net::{Context, SessionId};
use p2p_relational::Tuple;
use p2p_topology::NodeId;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

type Watermarks = BTreeMap<Arc<str>, usize>;

/// Progress of one rule fragment at the head node.
#[derive(Debug, Clone, Default)]
pub struct PartProgress {
    /// Fragment variables (column order of `rows`).
    pub vars: Vec<Arc<str>>,
    /// Accumulated extension, in arrival order.
    pub rows: Vec<Tuple>,
    /// Fast membership for `rows`.
    pub row_set: HashSet<Tuple>,
    /// The body node reported `state_u == closed` (paper's rule flag).
    pub complete: bool,
    /// At least one answer arrived.
    pub received: bool,
}

/// A subscription served to a rule's head node (body side).
#[derive(Debug, Clone)]
pub struct Subscription {
    /// The fragment to evaluate for this subscriber.
    pub part: BodyPart,
    /// Rows already shipped (delta base).
    pub sent: HashSet<Tuple>,
    /// Whether the last answer carried `complete = true`.
    pub sent_complete: bool,
    /// Database watermarks as of the last fragment evaluation for this
    /// subscriber. With `SystemConfig::delta_waves`, re-answers
    /// delta-evaluate the fragment from here instead of re-running the full
    /// conjunctive query — the hot-path saving on every cascade.
    pub watermarks: Watermarks,
}

/// Eager-mode state of one update session at one peer.
#[derive(Debug, Clone, Default)]
pub struct EagerState {
    /// The session is in progress (or finished) at this node.
    pub active: bool,
    /// The start-request flood passed through here.
    pub flood_seen: bool,
    /// `state_u == closed`.
    pub closed: bool,
    /// Per-(rule, body node) fragment progress (flat table, see
    /// [`crate::peer::tables`]).
    pub parts: VecMap<(RuleId, NodeId), PartProgress>,
    /// Subscriptions served, keyed by (subscriber, rule).
    pub subs: VecMap<(NodeId, RuleId), Subscription>,
    /// Highest fix-point broadcast generation processed.
    pub fixpoint_gen: u32,
    /// A dynamic change touched this node (rule added/removed here, or a
    /// reopen reached it). From then on the per-rule-flags early closure is
    /// disabled for the session: a dynamically created dependency cycle
    /// would otherwise let close/reopen notification waves chase each other
    /// around the ring forever (each member re-closing on its predecessor's
    /// stale completeness). Closure then comes from the root's fix-point
    /// broadcast, which is always sound.
    pub suppress_flag_closure: bool,
}

impl DbPeer {
    /// Starts (or joins) the update session. `sn_base` is the path of the
    /// query that caused the node to join (empty when joining via flood or
    /// as the initiator). Returns true if participation began now.
    pub(crate) fn begin_session(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        ctx: &mut Context<ProtocolMsg>,
        sn_base: &[NodeId],
    ) -> bool {
        if st.upd.active {
            return false;
        }
        st.upd = EagerState {
            active: true,
            closed: self.rules.is_empty(),
            ..Default::default()
        };
        st.retired = false;
        self.note_session_joined();
        if st.upd.closed {
            // A node with no rules is trivially at its fix-point.
            self.stats.closed_by = ClosedBy::RulesFlags;
        } else {
            self.stats.closed_by = ClosedBy::Open;
        }
        let rules: Vec<_> = self.rules.values().cloned().collect();
        for rule in &rules {
            for part in &rule.parts {
                st.upd.parts.insert(
                    (rule.id, part.node),
                    PartProgress {
                        vars: part.vars.clone(),
                        ..Default::default()
                    },
                );
            }
        }
        self.issue_queries(st, sid, &rules, ctx, sn_base);
        // Crash recovery: give any still-unanswered resync request another
        // chance with the new session (at-least-once; see `durability`).
        self.resend_pending_resyncs(ctx);
        true
    }

    /// Statistics hook for a session activation: counts participation and
    /// tracks the peak number of simultaneously open sessions (the entry
    /// being activated is not in the table while taken out, hence `+ 1`).
    pub(crate) fn note_session_joined(&mut self) {
        self.stats.sessions_participated += 1;
        let open = self
            .sessions
            .values()
            .filter(|s| s.open(self.config.mode))
            .count() as u64
            + 1;
        self.stats.concurrent_peak = self.stats.concurrent_peak.max(open);
    }

    fn issue_queries(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        rules: &[crate::rule::CoordinationRule],
        ctx: &mut Context<ProtocolMsg>,
        sn_base: &[NodeId],
    ) {
        let mut sn = sn_base.to_vec();
        sn.push(self.id);
        for rule in rules {
            for part in &rule.parts {
                self.stats.queries_sent += 1;
                self.send_basic(
                    st,
                    ctx,
                    part.node,
                    ProtocolMsg::Query {
                        session: sid,
                        rule: rule.id,
                        part: part.clone(),
                        sn: sn.clone(),
                    },
                );
            }
        }
    }

    /// Handles the flooded global update request.
    pub(crate) fn on_update_flood(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        from: NodeId,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.add_pipe(from);
        self.begin_session(st, sid, ctx, &[]);
        if !st.upd.flood_seen {
            st.upd.flood_seen = true;
            let targets: Vec<NodeId> = self.pipes.iter().copied().filter(|p| *p != from).collect();
            self.send_basic_many(st, ctx, targets, ProtocolMsg::UpdateFlood { session: sid });
        }
    }

    /// A4 — `Query(IDs, Q, SN)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_query(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        from: NodeId,
        rule: RuleId,
        part: BodyPart,
        sn: Vec<NodeId>,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.stats.queries_received += 1;
        self.add_pipe(from);
        // Joining via a query = A4's forwarding: our own queries extend SN.
        self.begin_session(st, sid, ctx, &sn);

        if st.upd.subs.contains_key(&(from, rule)) {
            self.stats.duplicate_queries += 1;
        }
        let mut sub = Subscription {
            part,
            sent: HashSet::new(),
            sent_complete: false,
            watermarks: Watermarks::new(),
        };
        let rows = self.eval_part_local(rule, &sub.part.clone(), ctx);
        sub.watermarks = self.db.watermarks();
        let complete = st.upd.closed;
        let ship: Vec<Tuple> = rows.clone();
        sub.sent.extend(rows);
        sub.sent_complete = complete;
        self.stats.answers_sent += 1;
        self.stats.rows_shipped += ship.len() as u64;
        let payload = self.make_answer_rows(from, &sub.part.vars.clone(), ship);
        st.upd.subs.insert((from, rule), sub);
        self.send_basic(
            st,
            ctx,
            from,
            ProtocolMsg::Answer {
                session: sid,
                rule,
                rows: payload,
                complete,
                reopen: false,
            },
        );
    }

    /// A5 — `Answer(ID, QA, SN, state)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_answer(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        from: NodeId,
        rule: RuleId,
        mut rows: crate::messages::AnswerRows,
        complete: bool,
        reopen: bool,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.stats.answers_received += 1;
        if !st.upd.active {
            if rows.rows.is_empty() {
                return;
            }
            // Data arrived for a session this peer is not (or no longer)
            // participating in — the defensive counterpart of the old
            // reopen-on-late-data path: a retired subscriber must not
            // silently drop a cascade a re-woken session pushed to it.
            // Re-join; the fresh queries rebuild fragment progress and the
            // session re-quiesces through the normal machinery.
            self.begin_session(st, sid, ctx, &[]);
        }
        self.absorb_dict(from, &mut rows);
        self.absorb_null_depths(&rows);
        // Durable peers log the processed answer (rows + the answerer's
        // watermarks — the crash-resync cursor).
        self.log_answer_mark(sid, rule, from, &rows);
        let Some(part) = st.upd.parts.get_mut(&(rule, from)) else {
            // The rule was deleted while the answer was in flight.
            return;
        };
        let first = !part.received;
        part.received = true;
        let mut grew = false;
        for t in rows.rows {
            if part.row_set.insert(t.clone()) {
                part.rows.push(t);
                grew = true;
            }
        }
        if reopen {
            part.complete = false;
            st.upd.suppress_flag_closure = true;
            self.reopen_if_closed(st, sid, ctx);
        } else if complete {
            part.complete = true;
        }
        if grew || first {
            let inserted = self.recompute_rule(st, rule);
            if inserted > 0 {
                // New local facts: cascade to subscribers (A5's trailing
                // `foreach node ∈ π₁(owner)`).
                self.reopen_if_closed(st, sid, ctx);
                self.push_deltas(st, sid, ctx);
            }
        }
        self.maybe_close_by_rules(st, sid, ctx);
    }

    /// A6 applied to one rule: joins accumulated fragments and chases.
    pub(crate) fn recompute_rule(&mut self, st: &mut SessionState, rule_id: RuleId) -> usize {
        let Some(rule) = self.rules.get(&rule_id) else {
            return 0;
        };
        let mut parts = Vec::with_capacity(rule.parts.len());
        for part in &rule.parts {
            let Some(progress) = st.upd.parts.get(&(rule_id, part.node)) else {
                return 0;
            };
            if !progress.received {
                return 0;
            }
            parts.push(crate::joins::VarRows {
                vars: progress.vars.clone(),
                rows: progress.rows.clone(),
            });
        }
        self.apply_rule(rule_id, parts)
    }

    /// Re-answers subscribers whose fragment result changed.
    ///
    /// With `delta_waves` (and the delta optimization) on, the fragment is
    /// **delta-evaluated** from the subscription's watermarks — only
    /// bindings using facts inserted since the last answer are computed —
    /// instead of re-running the full conjunctive query on every cascade.
    /// The `sent` filter stays as the exactness layer: delta evaluation may
    /// re-derive an already-shipped row from a new fact.
    pub(crate) fn push_deltas(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        let keys: Vec<(NodeId, RuleId)> = st.upd.subs.keys().copied().collect();
        let delta_eval = self.config.delta_waves && self.config.delta_optimization;
        for key in keys {
            let part = st.upd.subs[&key].part.clone();
            let rows = if delta_eval {
                let watermarks = st.upd.subs[&key].watermarks.clone();
                self.eval_part_delta_local(key.1, &part, &watermarks, ctx)
            } else {
                self.eval_part_local(key.1, &part, ctx)
            };
            let marks = self.db.watermarks();
            let closed = st.upd.closed;
            let Some(sub) = st.upd.subs.get_mut(&key) else {
                continue;
            };
            sub.watermarks = marks;
            let delta: Vec<Tuple> = rows
                .iter()
                .filter(|t| !sub.sent.contains(*t))
                .cloned()
                .collect();
            let completeness_news = closed && !sub.sent_complete;
            if delta.is_empty() && !completeness_news {
                continue;
            }
            sub.sent.extend(rows.iter().cloned());
            sub.sent_complete = closed;
            let ship = if self.config.delta_optimization {
                delta
            } else {
                rows
            };
            if delta_eval {
                // What a full re-ship would have re-sent: the whole current
                // extension, which (by monotonicity) is exactly `sent`.
                self.stats.delta_answers_sent += 1;
                self.stats.rows_saved += (st.upd.subs[&key].sent.len() - ship.len()) as u64;
            }
            self.stats.answers_sent += 1;
            self.stats.rows_shipped += ship.len() as u64;
            let payload = self.make_answer_rows(key.0, &part.vars, ship);
            self.send_basic(
                st,
                ctx,
                key.0,
                ProtocolMsg::Answer {
                    session: sid,
                    rule: key.1,
                    rows: payload,
                    complete: closed,
                    reopen: false,
                },
            );
        }
    }

    /// Lemma 1's `Rules` criterion: every fragment of every rule reported
    /// final data.
    pub(crate) fn maybe_close_by_rules(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        if st.upd.closed
            || !st.upd.active
            || st.upd.suppress_flag_closure
            || !self.pending_resync.is_empty()
        {
            return;
        }
        let all_complete = self
            .rules
            .values()
            .flat_map(|r| r.parts.iter().map(move |p| (r.id, p.node)))
            .all(|key| st.upd.parts.get(&key).map(|p| p.complete).unwrap_or(false));
        if all_complete {
            self.close(st, sid, ClosedBy::RulesFlags, ctx);
        }
    }

    /// Sets `state_u = closed` and (unless closed by the terminal broadcast,
    /// after which nobody is listening) ships final completeness answers.
    pub(crate) fn close(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        by: ClosedBy,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        st.upd.closed = true;
        self.stats.closed_by = by;
        if by != ClosedBy::RootBroadcast {
            self.push_deltas(st, sid, ctx);
        }
    }

    /// Re-opens after a dynamic change (or defensively when data arrives
    /// post-closure) and cascades the invalidation to subscribers.
    pub(crate) fn reopen_if_closed(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        if !st.upd.closed {
            return;
        }
        st.upd.closed = false;
        st.upd.suppress_flag_closure = true;
        self.stats.reopened += 1;
        self.stats.closed_by = ClosedBy::Open;
        let keys: Vec<(NodeId, RuleId)> = st.upd.subs.keys().copied().collect();
        for key in keys {
            // Only subscribers that saw `complete = true` hold stale
            // completeness to invalidate.
            let needs_reopen = match st.upd.subs.get_mut(&key) {
                Some(sub) if sub.sent_complete => {
                    sub.sent_complete = false;
                    true
                }
                _ => false,
            };
            if !needs_reopen {
                continue;
            }
            self.stats.answers_sent += 1;
            self.send_basic(
                st,
                ctx,
                key.0,
                ProtocolMsg::Answer {
                    session: sid,
                    rule: key.1,
                    rows: Default::default(),
                    complete: false,
                    reopen: true,
                },
            );
        }
    }

    /// Fix-point broadcast from the session root. Closes (unless a crash
    /// resync is still outstanding) and **retires** the session's state —
    /// termination detection guarantees no session traffic of the broadcast
    /// quiet period is in flight, so nothing can dangle.
    pub(crate) fn on_fixpoint(&mut self, st: &mut SessionState, generation: u32) {
        if st.ds.deficit() > 0 || (st.ds.engaged() && !st.ds.is_root()) {
            // Mid-diffusing: a post-fixpoint dynamic change re-engaged this
            // peer while a broadcast of the *previous* quiet period was
            // still in flight. That stale broadcast must neither close nor
            // retire live Dijkstra–Scholten state (a discarded deferred ack
            // would wedge the re-woken computation); the re-quiesce
            // broadcast — strictly newer generation — lands when this peer
            // is passive again. Deliberately does not record `generation`.
            return;
        }
        if !st.upd.active {
            // The session never reached this node (no pipes connect it to
            // the root's component). A rule-less node is trivially at its
            // fix-point and may close; a node *with* rules in a
            // disconnected component genuinely was not updated and must
            // stay open (Lemma 1: closed ⇔ fix-point reached *here*).
            if self.rules.is_empty() {
                st.upd.active = true;
                st.upd.closed = true;
                st.upd.fixpoint_gen = generation;
                st.retired = true;
                self.stats.closed_by = ClosedBy::RootBroadcast;
            }
            return;
        }
        if generation <= st.upd.fixpoint_gen {
            return;
        }
        st.upd.fixpoint_gen = generation;
        if !st.upd.closed && self.pending_resync.is_empty() {
            // A peer still reconciling a crash stays open — the driver sees
            // it and re-drives, which re-sends the resync. Closing here
            // would certify a fix-point with a silent hole if the resync
            // answer was lost.
            st.upd.closed = true;
            self.stats.closed_by = ClosedBy::RootBroadcast;
        }
        if st.upd.closed {
            st.retired = true;
        }
    }

    /// Root side of the broadcast (invoked by the Dijkstra–Scholten hook).
    /// The generation counter lives in [`crate::peer::SuperState`] so it
    /// survives a post-fixpoint re-wake of the session: the re-broadcast is
    /// strictly newer than any still-in-flight copy of the original.
    pub(crate) fn broadcast_fixpoint(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.sup.fixpoint_generation += 1;
        let generation = self.sup.fixpoint_generation;
        let me = self.id;
        ctx.send_to_many(
            self.sup.all_nodes.iter().copied().filter(|n| *n != me),
            ProtocolMsg::Fixpoint {
                session: sid,
                generation,
            },
        );
        self.on_fixpoint(st, generation);
    }

    /// `addRule` notification (dynamic change, Section 4).
    pub(crate) fn on_add_rule(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        rule: crate::rule::CoordinationRule,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        let parts: Vec<BodyPart> = rule.parts.clone();
        let rule_id = rule.id;
        self.install_rule(rule);
        if !st.upd.active {
            if sid.epoch == 0 {
                return; // No session yet: queried at the next session start.
            }
            // The change reached a retired (or not-yet-joined) session
            // entry: re-join so the change propagates within this run. The
            // session start queries every rule, including the new one.
            self.begin_session(st, sid, ctx, &[]);
            st.upd.suppress_flag_closure = true;
            return;
        }
        st.upd.suppress_flag_closure = true;
        for part in &parts {
            st.upd.parts.insert(
                (rule_id, part.node),
                PartProgress {
                    vars: part.vars.clone(),
                    ..Default::default()
                },
            );
        }
        self.reopen_if_closed(st, sid, ctx);
        let sn = vec![self.id];
        for part in parts {
            self.stats.queries_sent += 1;
            self.send_basic(
                st,
                ctx,
                part.node,
                ProtocolMsg::Query {
                    session: sid,
                    rule: rule_id,
                    part,
                    sn: sn.clone(),
                },
            );
        }
    }

    /// `deleteRule` notification (dynamic change, Section 4). Previously
    /// imported data is kept — consistent with Definition 9 (see
    /// `crate::dynamic`).
    pub(crate) fn on_delete_rule(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        rule_id: RuleId,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        let Some(rule) = self.rules.remove(&rule_id) else {
            return;
        };
        self.plans.remove(&rule_id);
        // A pending resync for a deleted rule has nothing left to repair.
        self.pending_resync.retain(|(_, r, _), _| *r != rule_id);
        if st.upd.active {
            st.upd.suppress_flag_closure = true;
            for part in &rule.parts {
                st.upd.parts.remove(&(rule_id, part.node));
                self.send_basic(
                    st,
                    ctx,
                    part.node,
                    ProtocolMsg::Unsubscribe {
                        session: sid,
                        rule: rule_id,
                    },
                );
            }
            self.maybe_close_by_rules(st, sid, ctx);
        }
    }

    /// Body-node side of `deleteRule`.
    pub(crate) fn on_unsubscribe(&mut self, st: &mut SessionState, from: NodeId, rule: RuleId) {
        self.plans.remove(&rule);
        if st.upd.active {
            st.upd.subs.remove(&(from, rule));
        }
    }
}
