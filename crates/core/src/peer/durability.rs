//! Durable peers: WAL logging, crash wipe, storage recovery and the
//! watermark-based resync protocol.
//!
//! With [`crate::config::SystemConfig::durability`] on, every peer owns a
//! [`p2p_storage::PeerStorage`] and logs two kinds of events as they
//! happen, atomically with the handler that caused them:
//!
//! * every fact the update algorithm inserts
//!   ([`p2p_storage::WalRecord::Insert`], written from
//!   [`DbPeer::apply_rule_bindings`]);
//! * every fragment answer it processes
//!   ([`p2p_storage::WalRecord::Answer`]) — the rows (so the head-side
//!   fragment caches can be rebuilt) and the answerer's database
//!   watermarks (the **resync cursor**).
//!
//! ## Crash and recovery
//!
//! A crash ([`DbPeer::crash_volatile_state`]) wipes everything in memory:
//! database, null mint, chase depths, update/rounds/discovery state,
//! Dijkstra–Scholten counters, dedup sets. Static configuration — the
//! coordination rules targeting the node, its pipes, the roster — survives,
//! just as a real peer would re-read the network rule file at boot
//! (Section 5). Statistics survive too: they are the experiment's
//! measurement apparatus, not modelled peer state.
//!
//! At restart ([`DbPeer::restart_and_resync`]) the peer replays
//! `snapshot + WAL` into a database **tuple-identical** to the pre-crash
//! one (soundness of recovery), then sends one
//! [`crate::messages::ProtocolMsg::ResyncRequest`] per rule fragment,
//! carrying the last durably-processed watermark of that fragment's body
//! node. The body node answers with a delta evaluation from exactly that
//! watermark — the same machinery as the PR-2 delta waves — so only facts
//! inserted there *since the crash horizon* are re-shipped, never the full
//! extension (completeness of recovery, at delta cost). FIFO pipes make
//! the cursor sound: if the peer durably logged an answer with watermark
//! `W`, it had processed every earlier answer of that subscription, so
//! everything it can possibly be missing is derivable from facts past `W`.
//!
//! Liveness after a mid-wave crash is the driver's job: a crashed peer
//! cannot echo, so the wave stalls and the simulator quiesces unclosed;
//! [`crate::system::P2PSystem::run_update_resilient`] then re-drives the
//! session (a fresh round for rounds mode, a fresh epoch for eager mode)
//! until closure is re-certified.

use crate::joins::{join_parts, VarRows};
use crate::messages::{AnswerRows, ProtocolMsg};
use crate::peer::DbPeer;
use crate::rule::{BodyPart, RuleId};
use p2p_net::Context;
use p2p_relational::chase::ChaseState;
use p2p_relational::{Database, NullFactory, Tuple};
use p2p_storage::{FragmentMark, PeerStorage, StorageResult, WalRecord};
use p2p_topology::NodeId;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-relation insertion watermarks (the resync cursor currency).
type Marks = BTreeMap<Arc<str>, usize>;

impl DbPeer {
    /// Attaches a durable store. A fresh store gets the initial snapshot
    /// (base data, pre-session) so recovery always has a schema-bearing
    /// starting point; a store that already holds state — e.g. a reopened
    /// [`p2p_storage::FileBackend`] from a previous process — is adopted
    /// instead: the disk is the truth, and overwriting its snapshot with
    /// this peer's base data (while the WAL cursor points past the logged
    /// frames) would silently amputate every previously logged fact from
    /// recovery.
    pub fn attach_storage(&mut self, mut storage: PeerStorage) -> StorageResult<()> {
        match storage.recover(self.id.0)? {
            Some(rec) => {
                self.db = rec.db;
                self.nulls = NullFactory::resume(self.id.0, rec.nulls_next);
                for (id, depth) in rec.depths {
                    self.chase.record(id, depth);
                }
                for (&(rule_raw, node), mark) in &rec.marks {
                    self.rnd
                        .wave_cache
                        .entry((RuleId(rule_raw), node))
                        .or_default()
                        .merge(&mark.vars, mark.rows.clone());
                }
            }
            None => storage.snapshot(&self.db, self.nulls.minted(), self.chase.export())?,
        }
        self.storage = Some(storage);
        Ok(())
    }

    /// Whether a durable store is attached.
    pub fn has_storage(&self) -> bool {
        self.storage.is_some()
    }

    /// Write-ahead-logs freshly applied insertions (no-op without storage).
    pub(crate) fn log_insertions(&mut self, inserted: &[(Arc<str>, Tuple)]) {
        if self.storage.is_none() || inserted.is_empty() {
            return;
        }
        let mut snapshot_due = false;
        let mut errors = Vec::new();
        if let Some(st) = self.storage.as_mut() {
            for (relation, tuple) in inserted {
                let record = WalRecord::Insert {
                    relation: relation.clone(),
                    tuple: tuple.clone(),
                    depths: self.chase.depths_for(tuple),
                    dict: st.first_use_dict(tuple.values()),
                };
                match st.log(&record) {
                    Ok(due) => snapshot_due |= due,
                    Err(e) => errors.push(format!("WAL append failed: {e}")),
                }
            }
        }
        if snapshot_due {
            self.take_snapshot();
        }
        for e in errors {
            self.fail(e);
        }
    }

    /// Write-ahead-logs one processed fragment answer: the rows (cache
    /// rebuild) and the answerer's watermarks (resync cursor). Payload-free
    /// acknowledgements (empty `marks`) carry no durable information.
    pub(crate) fn log_answer_mark(&mut self, rule: RuleId, from: NodeId, rows: &AnswerRows) {
        if self.storage.is_none() || rows.marks.is_empty() {
            return;
        }
        let mut snapshot_due = false;
        let mut error = None;
        if let Some(st) = self.storage.as_mut() {
            let record = WalRecord::Answer {
                rule: rule.0,
                node: from,
                vars: rows.vars.clone(),
                rows: rows.rows.clone(),
                watermarks: rows.marks.clone(),
                dict: st.first_use_dict(rows.rows.iter().flat_map(|t| t.0.iter())),
            };
            match st.log(&record) {
                Ok(due) => snapshot_due = due,
                Err(e) => error = Some(format!("WAL append failed: {e}")),
            }
        }
        if snapshot_due {
            self.take_snapshot();
        }
        if let Some(e) = error {
            self.fail(e);
        }
    }

    /// Writes a snapshot of the current database and chase bookkeeping.
    fn take_snapshot(&mut self) {
        let nulls_next = self.nulls.minted();
        let depths = self.chase.export();
        let mut error = None;
        if let Some(st) = self.storage.as_mut() {
            if let Err(e) = st.snapshot(&self.db, nulls_next, depths) {
                error = Some(format!("snapshot failed: {e}"));
            }
        }
        if let Some(e) = error {
            self.fail(e);
        }
    }

    /// Churn: the process dies. Everything in memory goes; storage (and
    /// static configuration — rules, pipes, roster) survives.
    pub(crate) fn crash_volatile_state(&mut self) {
        self.stats.crashes += 1;
        self.db = Database::new(self.db.schema().clone());
        self.nulls = NullFactory::new(self.id.0);
        self.chase = ChaseState::new();
        self.upd = Default::default();
        self.rnd = Default::default();
        self.disc = Default::default();
        self.ds.reset();
        self.seen_msgs.clear();
        self.pending_resync.clear();
        self.sym_sent.clear();
    }

    /// Churn: the process comes back. Rebuilds the database from storage,
    /// resumes the null mint past every pre-crash id, primes the head-side
    /// fragment caches from the durable answer log, and asks every rule
    /// fragment's body node for the delta since the last durably-processed
    /// watermark.
    pub(crate) fn restart_and_resync(&mut self, ctx: &mut Context<ProtocolMsg>) {
        let Some(st) = self.storage.as_ref() else {
            // Amnesia baseline: without storage there is no durable state to
            // recover and no watermark to resync from — the peer genuinely
            // lost everything and rejoins empty at the next session.
            return;
        };
        let mut marks: BTreeMap<(u32, NodeId), FragmentMark> = BTreeMap::new();
        let mut outcome: Result<bool, String> = Ok(false);
        match st.recover(self.id.0) {
            Ok(Some(rec)) => {
                self.db = rec.db;
                self.nulls = NullFactory::resume(self.id.0, rec.nulls_next);
                for (id, depth) in rec.depths {
                    self.chase.record(id, depth);
                }
                marks = rec.marks;
                outcome = Ok(true);
            }
            Ok(None) => {}
            Err(e) => outcome = Err(format!("recovery failed: {e}")),
        }
        match outcome {
            Ok(true) => self.stats.recoveries += 1,
            Ok(false) => {}
            Err(e) => self.fail(e),
        }

        // Head-side fragment caches must be whole before any delta answer
        // arrives: a delta joins against the *full* cached extensions, so a
        // hole in the cache would silently lose bindings.
        for (&(rule_raw, node), mark) in &marks {
            self.rnd
                .wave_cache
                .entry((RuleId(rule_raw), node))
                .or_default()
                .merge(&mark.vars, mark.rows.clone());
        }

        // Watermark-based resync (control plane, outside any session). Each
        // request is tracked in `pending_resync` until its answer arrives:
        // the peer refuses to close while any is outstanding and re-sends
        // on every session (re-)entry, so a dropped resync message stalls
        // the session (which the driver re-drives) instead of silently
        // losing the missed rows forever.
        let rules: Vec<_> = self.rules.values().cloned().collect();
        for rule in &rules {
            for part in &rule.parts {
                let since = marks
                    .get(&(rule.id.0, part.node))
                    .map(|m| m.watermarks.clone())
                    .unwrap_or_default();
                self.pending_resync
                    .insert((rule.id, part.node), since.clone());
                ctx.send(
                    part.node,
                    ProtocolMsg::ResyncRequest {
                        rule: rule.id,
                        part: part.clone(),
                        since,
                    },
                );
            }
        }
    }

    /// Re-sends every outstanding resync request (at-least-once delivery;
    /// both ends are idempotent — the answerer just delta-evaluates again,
    /// the requester's cache merge deduplicates). Called when the peer
    /// (re-)enters an update session, which is exactly when the driver's
    /// re-drive gives lost resync traffic another chance.
    pub(crate) fn resend_pending_resyncs(&mut self, ctx: &mut Context<ProtocolMsg>) {
        if self.pending_resync.is_empty() {
            return;
        }
        let pending: Vec<((RuleId, NodeId), Marks)> = self
            .pending_resync
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        for ((rule, node), since) in pending {
            let part = self
                .rules
                .get(&rule)
                .and_then(|r| r.parts.iter().find(|p| p.node == node).cloned());
            match part {
                Some(part) => ctx.send(node, ProtocolMsg::ResyncRequest { rule, part, since }),
                // The rule (or this fragment) is gone — nothing left to
                // reconcile.
                None => {
                    self.pending_resync.remove(&(rule, node));
                }
            }
        }
    }

    /// Body-node side of resync: evaluate the fragment's delta past the
    /// requester's durable watermark and ship it. An empty `since` (the
    /// requester never durably processed an answer) degenerates to the full
    /// extension — of this one fragment, never of the network.
    pub(crate) fn on_resync_request(
        &mut self,
        from: NodeId,
        rule: RuleId,
        part: BodyPart,
        since: BTreeMap<Arc<str>, usize>,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.add_pipe(from);
        let rows = self.eval_part_delta_local(&part, &since, ctx);
        let payload = self.make_answer_rows(from, &part.vars, rows);
        ctx.send(
            from,
            ProtocolMsg::ResyncAnswer {
                rule,
                rows: payload,
            },
        );
    }

    /// Requester side of resync: log the answer durably, merge it into the
    /// fragment cache, and re-derive the rule once every fragment is
    /// cached. Insertions go through the standard chase (and hence the
    /// WAL), so a crash *during* recovery is itself recoverable.
    pub(crate) fn on_resync_answer(&mut self, from: NodeId, rule: RuleId, rows: AnswerRows) {
        self.pending_resync.remove(&(rule, from));
        self.stats.resync_rows += rows.rows.len() as u64;
        self.absorb_dict(from, &rows);
        self.absorb_null_depths(&rows);
        self.log_answer_mark(rule, from, &rows);
        self.rnd
            .wave_cache
            .entry((rule, from))
            .or_default()
            .merge(&rows.vars, rows.rows);
        let Some(rule_obj) = self.rules.get(&rule).cloned() else {
            return;
        };
        if !rule_obj
            .parts
            .iter()
            .all(|p| self.rnd.wave_cache.contains_key(&(rule, p.node)))
        {
            return; // other fragments' resync answers still in flight
        }
        let staged: Vec<VarRows> = rule_obj
            .parts
            .iter()
            .map(|p| {
                let c = &self.rnd.wave_cache[&(rule, p.node)];
                VarRows {
                    vars: c.vars.clone(),
                    rows: c.rows.clone(),
                }
            })
            .collect();
        let bindings = join_parts(&staged, &rule_obj.join_constraints);
        if self.apply_rule_bindings(&rule_obj, &bindings) > 0 {
            self.rnd.dirty_self = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use p2p_relational::{Database, DatabaseSchema, Val};
    use p2p_storage::FileBackend;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "p2p_core_durability_{}_{}_{}",
            tag,
            std::process::id(),
            n
        ))
    }

    fn schema() -> DatabaseSchema {
        DatabaseSchema::parse("a(x: int).").unwrap()
    }

    fn durable_config() -> SystemConfig {
        SystemConfig {
            durability: true,
            ..Default::default()
        }
    }

    /// Attaching a store that already holds state (a reopened file backend
    /// from a previous process) must adopt that state, not clobber its
    /// snapshot with the fresh peer's base data — which, combined with the
    /// pre-existing WAL cursor, would amputate every logged fact from
    /// recovery.
    #[test]
    fn attach_adopts_reopened_file_store_instead_of_clobbering() {
        let dir = temp_dir("reopen");
        // "First process": fresh store, one logged fact.
        {
            let mut peer = DbPeer::new(NodeId(1), Database::new(schema()), durable_config());
            let st = PeerStorage::new(Box::new(FileBackend::open(&dir).unwrap()), 0);
            peer.attach_storage(st).unwrap();
            peer.db.insert_values("a", vec![Val::Int(7)]).unwrap();
            peer.log_insertions(&[(Arc::from("a"), Tuple::new(vec![Val::Int(7)]))]);
        }
        // "Second process": reopen the same store with a base-only peer.
        let mut peer = DbPeer::new(NodeId(1), Database::new(schema()), durable_config());
        let st = PeerStorage::new(Box::new(FileBackend::open(&dir).unwrap()), 0);
        peer.attach_storage(st).unwrap();
        assert_eq!(
            peer.database().total_tuples(),
            1,
            "the logged fact must survive the reopen"
        );
        // And a crash/restart cycle still recovers it.
        peer.crash_volatile_state();
        assert!(peer.database().is_empty(), "crash wipes memory");
        let mut ctx = Context::new(p2p_net::SimTime::ZERO, NodeId(1));
        peer.restart_and_resync(&mut ctx);
        assert_eq!(peer.database().total_tuples(), 1);
        assert_eq!(peer.stats.recoveries, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Without storage a restart is pure amnesia: nothing recovered, no
    /// resync traffic, no recovery counted.
    #[test]
    fn restart_without_storage_is_amnesia() {
        let mut peer = DbPeer::new(NodeId(2), Database::new(schema()), SystemConfig::default());
        peer.db.insert_values("a", vec![Val::Int(1)]).unwrap();
        peer.crash_volatile_state();
        let mut ctx = Context::new(p2p_net::SimTime::ZERO, NodeId(2));
        peer.restart_and_resync(&mut ctx);
        assert!(peer.database().is_empty());
        assert!(ctx.take_outgoing().is_empty(), "no resync without storage");
        assert_eq!(peer.stats.crashes, 1);
        assert_eq!(peer.stats.recoveries, 0);
    }
}
