//! Durable peers: WAL logging, crash wipe, storage recovery and the
//! watermark-based resync protocol.
//!
//! With [`crate::config::SystemConfig::durability`] on, every peer owns a
//! [`p2p_storage::PeerStorage`] and logs two kinds of events as they
//! happen, atomically with the handler that caused them:
//!
//! * every fact the update algorithm inserts
//!   ([`p2p_storage::WalRecord::Insert`], written from
//!   [`DbPeer::apply_rule_bindings`]);
//! * every fragment answer it processes
//!   ([`p2p_storage::WalRecord::Answer`]) — **session-tagged**: the rows
//!   (so each interleaved session's head-side fragment caches can be
//!   rebuilt) and the answerer's database watermarks (the **resync
//!   cursor**, one per session-scoped delta stream).
//!
//! ## Crash and recovery
//!
//! A crash ([`DbPeer::crash_volatile_state`]) wipes everything in memory:
//! database, null mint, chase depths, the whole per-session state table
//! (update/rounds/Dijkstra–Scholten state of every interleaved session),
//! discovery state, dedup sets. Static configuration — the coordination
//! rules targeting the node, its pipes, the roster — survives, just as a
//! real peer would re-read the network rule file at boot (Section 5).
//! Statistics survive too: they are the experiment's measurement apparatus,
//! not modelled peer state.
//!
//! At restart ([`DbPeer::restart_and_resync`]) the peer replays
//! `snapshot + WAL` into a database **tuple-identical** to the pre-crash
//! one (soundness of recovery), re-creates one session entry per session
//! found in the durable answer log (priming its fragment caches), and sends
//! one [`crate::messages::ProtocolMsg::ResyncRequest`] per session and rule
//! fragment, carrying the last durably-processed watermark of that
//! fragment's body node *in that session*. The body node answers with a
//! delta evaluation from exactly that watermark — the same machinery as the
//! delta waves — so only facts inserted there *since the crash horizon* are
//! re-shipped, never the full extension (completeness of recovery, at delta
//! cost). FIFO pipes make the cursor sound: if the peer durably logged an
//! answer with watermark `W`, it had processed every earlier answer of that
//! subscription, so everything it can possibly be missing is derivable from
//! facts past `W`. A crash mid-run therefore recovers **all** interleaved
//! sessions, not just one.
//!
//! Liveness after a mid-wave crash is the driver's job: a crashed peer
//! cannot echo, so the wave stalls and the simulator quiesces unclosed;
//! [`crate::system::P2PSystem::run_update_resilient`] then re-drives the
//! session (a fresh round of the same session for rounds mode, a fresh
//! session-tagged epoch for eager mode) until closure is re-certified.

use crate::joins::{join_parts, VarRows};
use crate::messages::{AnswerRows, ProtocolMsg};
use crate::peer::DbPeer;
use crate::rule::{BodyPart, RuleId};
use p2p_net::{Context, SessionId};
use p2p_relational::chase::ChaseState;
use p2p_relational::{Database, NullFactory, Tuple};
use p2p_storage::{FragmentMark, PeerStorage, StorageResult, WalRecord};
use p2p_topology::NodeId;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-relation insertion watermarks (the resync cursor currency).
type Marks = BTreeMap<Arc<str>, usize>;

impl DbPeer {
    /// Attaches a durable store. A fresh store gets the initial snapshot
    /// (base data, pre-session) so recovery always has a schema-bearing
    /// starting point; a store that already holds state — e.g. a reopened
    /// [`p2p_storage::FileBackend`] from a previous process — is adopted
    /// instead: the disk is the truth, and overwriting its snapshot with
    /// this peer's base data (while the WAL cursor points past the logged
    /// frames) would silently amputate every previously logged fact from
    /// recovery.
    pub fn attach_storage(&mut self, mut storage: PeerStorage) -> StorageResult<()> {
        match storage.recover(self.id.0)? {
            Some(rec) => {
                self.db = rec.db;
                self.nulls = NullFactory::resume(self.id.0, rec.nulls_next);
                for (id, depth) in rec.depths {
                    self.chase.record(id, depth);
                }
                self.prime_session_caches(&rec.marks);
            }
            None => storage.snapshot(&self.db, self.nulls.minted(), self.chase.export())?,
        }
        self.storage = Some(storage);
        Ok(())
    }

    /// Whether a durable store is attached.
    pub fn has_storage(&self) -> bool {
        self.storage.is_some()
    }

    /// Inserts one base fact **durably**: into the live database and — when
    /// a store is attached — the write-ahead log, exactly like a
    /// protocol-applied insertion. The seeding path for data arriving after
    /// build time (concurrent-writer deltas); going around the WAL here
    /// would make a later crash silently lose the fact.
    pub fn insert_base_fact(
        &mut self,
        relation: &str,
        values: Vec<p2p_relational::Val>,
    ) -> p2p_relational::error::Result<()> {
        let tuple = Tuple::new(values);
        if self.db.insert(relation, tuple.clone())? {
            self.log_insertions(&[(Arc::from(relation), tuple)]);
        }
        Ok(())
    }

    /// Write-ahead-logs freshly applied insertions (no-op without storage).
    pub(crate) fn log_insertions(&mut self, inserted: &[(Arc<str>, Tuple)]) {
        if self.storage.is_none() || inserted.is_empty() {
            return;
        }
        let mut snapshot_due = false;
        let mut errors = Vec::new();
        if let Some(st) = self.storage.as_mut() {
            for (relation, tuple) in inserted {
                let record = WalRecord::Insert {
                    relation: relation.clone(),
                    tuple: tuple.clone(),
                    depths: self.chase.depths_for(tuple),
                    dict: st.first_use_dict(tuple.values()),
                };
                match st.log(&record) {
                    Ok(due) => snapshot_due |= due,
                    Err(e) => errors.push(format!("WAL append failed: {e}")),
                }
            }
        }
        if snapshot_due {
            self.take_snapshot();
        }
        for e in errors {
            self.fail(e);
        }
    }

    /// Write-ahead-logs one processed fragment answer: the session it
    /// belongs to, the rows (cache rebuild) and the answerer's watermarks
    /// (resync cursor). Payload-free acknowledgements (empty `marks`) carry
    /// no durable information.
    pub(crate) fn log_answer_mark(
        &mut self,
        sid: SessionId,
        rule: RuleId,
        from: NodeId,
        rows: &AnswerRows,
    ) {
        if self.storage.is_none() || rows.marks.is_empty() {
            return;
        }
        let mut snapshot_due = false;
        let mut error = None;
        if let Some(st) = self.storage.as_mut() {
            let record = WalRecord::Answer {
                session: sid,
                rule: rule.0,
                node: from,
                vars: rows.vars.clone(),
                rows: rows.rows.clone(),
                watermarks: rows.marks.clone(),
                dict: st.first_use_dict(rows.rows.iter().flat_map(|t| t.0.iter())),
            };
            match st.log(&record) {
                Ok(due) => snapshot_due = due,
                Err(e) => error = Some(format!("WAL append failed: {e}")),
            }
        }
        if snapshot_due {
            self.take_snapshot();
        }
        if let Some(e) = error {
            self.fail(e);
        }
    }

    /// Writes a snapshot of the current database and chase bookkeeping.
    fn take_snapshot(&mut self) {
        let nulls_next = self.nulls.minted();
        let depths = self.chase.export();
        let mut error = None;
        if let Some(st) = self.storage.as_mut() {
            if let Err(e) = st.snapshot(&self.db, nulls_next, depths) {
                error = Some(format!("snapshot failed: {e}"));
            }
        }
        if let Some(e) = error {
            self.fail(e);
        }
    }

    /// Rebuilds each logged session's head-side fragment caches from the
    /// recovered marks: one session entry per session the durable answer
    /// log knows, so every interleaved session a crash interrupted can
    /// resume with its caches whole. Must run before any delta answer
    /// arrives — a delta joins against the *full* cached extensions, so a
    /// hole in a cache would silently lose bindings.
    fn prime_session_caches(&mut self, marks: &BTreeMap<(SessionId, u32, NodeId), FragmentMark>) {
        for (&(sid, rule_raw, node), mark) in marks {
            self.sessions
                .or_default(sid)
                .rnd
                .wave_cache
                .entry((RuleId(rule_raw), node))
                .or_default()
                .merge(&mark.vars, mark.rows.clone());
        }
    }

    /// Churn: the process dies. Everything in memory goes — including the
    /// whole per-session table; storage (and static configuration — rules,
    /// pipes, roster) survives.
    pub(crate) fn crash_volatile_state(&mut self) {
        self.stats.crashes += 1;
        self.db = Database::new(self.db.schema().clone());
        self.plans.clear();
        self.nulls = NullFactory::new(self.id.0);
        self.chase = ChaseState::new();
        self.sessions.clear();
        self.done.clear();
        self.disc = Default::default();
        self.seen_msgs.clear();
        self.pending_resync.clear();
        self.sym_sent.clear();
    }

    /// Churn: the process comes back. Rebuilds the database from storage,
    /// resumes the null mint past every pre-crash id, re-creates the
    /// session entries found in the durable answer log (priming their
    /// head-side fragment caches), and asks every rule fragment's body node
    /// for the delta since the last durably-processed watermark, per
    /// session.
    pub(crate) fn restart_and_resync(&mut self, ctx: &mut Context<ProtocolMsg>) {
        let Some(st) = self.storage.as_ref() else {
            // Amnesia baseline: without storage there is no durable state to
            // recover and no watermark to resync from — the peer genuinely
            // lost everything and rejoins empty at the next session.
            return;
        };
        let mut marks: BTreeMap<(SessionId, u32, NodeId), FragmentMark> = BTreeMap::new();
        let mut outcome: Result<bool, String> = Ok(false);
        match st.recover(self.id.0) {
            Ok(Some(rec)) => {
                self.db = rec.db;
                self.nulls = NullFactory::resume(self.id.0, rec.nulls_next);
                for (id, depth) in rec.depths {
                    self.chase.record(id, depth);
                }
                marks = rec.marks;
                outcome = Ok(true);
            }
            Ok(None) => {}
            Err(e) => outcome = Err(format!("recovery failed: {e}")),
        }
        match outcome {
            Ok(true) => self.stats.recoveries += 1,
            Ok(false) => {}
            Err(e) => self.fail(e),
        }

        self.prime_session_caches(&marks);

        // The sessions the log knows about, newest first as a fallback tag
        // for fragments never durably answered in any session.
        let logged_sessions: Vec<SessionId> = marks.keys().map(|k| k.0).collect();
        let fallback = logged_sessions.iter().copied().max().unwrap_or_default();

        // Watermark-based resync (control plane, outside any session's
        // termination detector). Each request is tracked in
        // `pending_resync` until its answer arrives: the peer refuses to
        // close while any is outstanding and re-sends on every session
        // (re-)entry, so a dropped resync message stalls the session (which
        // the driver re-drives) instead of silently losing the missed rows
        // forever.
        let rules: Vec<_> = self.rules.values().cloned().collect();
        for rule in &rules {
            for part in &rule.parts {
                // One request per session that durably processed answers of
                // this fragment; a fragment with no durable answer at all is
                // asked once, from the empty watermark, under the newest
                // logged session's tag.
                let mut tagged: Vec<(SessionId, Marks)> = marks
                    .iter()
                    .filter(|((_, r, n), _)| *r == rule.id.0 && *n == part.node)
                    .map(|((sid, _, _), m)| (*sid, m.watermarks.clone()))
                    .collect();
                if tagged.is_empty() {
                    tagged.push((fallback, Marks::new()));
                }
                for (sid, since) in tagged {
                    self.pending_resync
                        .insert((sid, rule.id, part.node), since.clone());
                    ctx.send(
                        part.node,
                        ProtocolMsg::ResyncRequest {
                            session: sid,
                            rule: rule.id,
                            part: part.clone(),
                            since,
                        },
                    );
                }
            }
        }
    }

    /// Re-sends every outstanding resync request (at-least-once delivery;
    /// both ends are idempotent — the answerer just delta-evaluates again,
    /// the requester's cache merge deduplicates). Called when the peer
    /// (re-)enters an update session, which is exactly when the driver's
    /// re-drive gives lost resync traffic another chance.
    pub(crate) fn resend_pending_resyncs(&mut self, ctx: &mut Context<ProtocolMsg>) {
        if self.pending_resync.is_empty() {
            return;
        }
        let pending: Vec<((SessionId, RuleId, NodeId), Marks)> = self
            .pending_resync
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        for ((sid, rule, node), since) in pending {
            let part = self
                .rules
                .get(&rule)
                .and_then(|r| r.parts.iter().find(|p| p.node == node).cloned());
            match part {
                Some(part) => ctx.send(
                    node,
                    ProtocolMsg::ResyncRequest {
                        session: sid,
                        rule,
                        part,
                        since,
                    },
                ),
                // The rule (or this fragment) is gone — nothing left to
                // reconcile.
                None => {
                    self.pending_resync.remove(&(sid, rule, node));
                }
            }
        }
    }

    /// Body-node side of resync: evaluate the fragment's delta past the
    /// requester's durable watermark and ship it. An empty `since` (the
    /// requester never durably processed an answer) degenerates to the full
    /// extension — of this one fragment, never of the network. Answered
    /// regardless of what this node holds for the session: repair is
    /// control-plane data movement.
    ///
    /// A resync request also means the requester **lost its volatile
    /// fragment caches**: every delta subscription this node holds for that
    /// requester and rule — in *any* session — is dropped, so the next wave
    /// or cascade answer ships the full extension instead of a delta the
    /// requester could not join soundly. (A delta joins against the full
    /// cached extension; an answer stream resumed against a partially
    /// recovered cache would silently lose bindings.)
    pub(crate) fn on_resync_request(
        &mut self,
        from: NodeId,
        sid: SessionId,
        rule: RuleId,
        part: BodyPart,
        since: BTreeMap<Arc<str>, usize>,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.add_pipe(from);
        for st in self.sessions.values_mut() {
            st.rnd.wave_subs.remove(&(from, rule));
            st.upd.subs.remove(&(from, rule));
        }
        let rows = self.eval_part_delta_local(rule, &part, &since, ctx);
        let payload = self.make_answer_rows(from, &part.vars, rows);
        ctx.send(
            from,
            ProtocolMsg::ResyncAnswer {
                session: sid,
                rule,
                rows: payload,
            },
        );
    }

    /// Requester side of resync: log the answer durably, merge it into the
    /// tagged session's fragment cache — re-creating the entry if the tag
    /// names a session this peer no longer (or never) holds, such as the
    /// fallback tag of a fragment never durably answered — and re-derive
    /// the rule once every fragment is cached, so the repair's derivations
    /// land even without a driver re-drive. Insertions go through the
    /// standard chase (and hence the WAL), so a crash *during* recovery is
    /// itself recoverable. Once the last outstanding resync drains, entries
    /// that only ever held repair caches are swept: their facts live in the
    /// database (and WAL), and any resumed session's answers arrive as full
    /// extensions anyway (the body dropped its delta subscriptions on the
    /// resync request), so nothing references the caches again.
    pub(crate) fn on_resync_answer(
        &mut self,
        sid: SessionId,
        from: NodeId,
        rule: RuleId,
        mut rows: AnswerRows,
    ) {
        self.pending_resync.remove(&(sid, rule, from));
        self.stats.resync_rows += rows.rows.len() as u64;
        self.absorb_dict(from, &mut rows);
        self.absorb_null_depths(&rows);
        self.log_answer_mark(sid, rule, from, &rows);
        let mut st = self.sessions.remove(&sid).unwrap_or_default();
        st.rnd
            .wave_cache
            .entry((rule, from))
            .or_default()
            .merge(&rows.vars, rows.rows);
        if let Some(rule_obj) = self.rules.get(&rule).cloned() {
            if rule_obj
                .parts
                .iter()
                .all(|p| st.rnd.wave_cache.contains_key(&(rule, p.node)))
            {
                let staged: Vec<VarRows> = rule_obj
                    .parts
                    .iter()
                    .map(|p| {
                        let c = &st.rnd.wave_cache[&(rule, p.node)];
                        VarRows {
                            vars: c.vars.clone(),
                            rows: c.rows.clone(),
                        }
                    })
                    .collect();
                let bindings = join_parts(&staged, &rule_obj.join_constraints);
                if self.apply_rule_bindings(&rule_obj, &bindings) > 0 {
                    st.rnd.dirty_self = true;
                }
            }
        }
        self.sessions.insert(sid, st);
        if self.pending_resync.is_empty() {
            self.sessions
                .retain(|_, s| s.joined() || s.ds.engaged() || s.ds.deficit() > 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use p2p_relational::{Database, DatabaseSchema, Val};
    use p2p_storage::FileBackend;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "p2p_core_durability_{}_{}_{}",
            tag,
            std::process::id(),
            n
        ))
    }

    fn schema() -> DatabaseSchema {
        DatabaseSchema::parse("a(x: int).").unwrap()
    }

    fn durable_config() -> SystemConfig {
        SystemConfig {
            durability: true,
            ..Default::default()
        }
    }

    /// Attaching a store that already holds state (a reopened file backend
    /// from a previous process) must adopt that state, not clobber its
    /// snapshot with the fresh peer's base data — which, combined with the
    /// pre-existing WAL cursor, would amputate every logged fact from
    /// recovery.
    #[test]
    fn attach_adopts_reopened_file_store_instead_of_clobbering() {
        let dir = temp_dir("reopen");
        // "First process": fresh store, one logged fact.
        {
            let mut peer = DbPeer::new(NodeId(1), Database::new(schema()), durable_config());
            let st = PeerStorage::new(Box::new(FileBackend::open(&dir).unwrap()), 0);
            peer.attach_storage(st).unwrap();
            peer.db.insert_values("a", vec![Val::Int(7)]).unwrap();
            peer.log_insertions(&[(Arc::from("a"), Tuple::new(vec![Val::Int(7)]))]);
        }
        // "Second process": reopen the same store with a base-only peer.
        let mut peer = DbPeer::new(NodeId(1), Database::new(schema()), durable_config());
        let st = PeerStorage::new(Box::new(FileBackend::open(&dir).unwrap()), 0);
        peer.attach_storage(st).unwrap();
        assert_eq!(
            peer.database().total_tuples(),
            1,
            "the logged fact must survive the reopen"
        );
        // And a crash/restart cycle still recovers it.
        peer.crash_volatile_state();
        assert!(peer.database().is_empty(), "crash wipes memory");
        let mut ctx = Context::new(p2p_net::SimTime::ZERO, NodeId(1));
        peer.restart_and_resync(&mut ctx);
        assert_eq!(peer.database().total_tuples(), 1);
        assert_eq!(peer.stats.recoveries, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Without storage a restart is pure amnesia: nothing recovered, no
    /// resync traffic, no recovery counted.
    #[test]
    fn restart_without_storage_is_amnesia() {
        let mut peer = DbPeer::new(NodeId(2), Database::new(schema()), SystemConfig::default());
        peer.db.insert_values("a", vec![Val::Int(1)]).unwrap();
        peer.crash_volatile_state();
        let mut ctx = Context::new(p2p_net::SimTime::ZERO, NodeId(2));
        peer.restart_and_resync(&mut ctx);
        assert!(peer.database().is_empty());
        assert!(ctx.take_outgoing().is_empty(), "no resync without storage");
        assert_eq!(peer.stats.crashes, 1);
        assert_eq!(peer.stats.recoveries, 0);
    }

    /// Post-build seeding goes through the WAL: a fact inserted via
    /// `insert_base_fact` (the concurrent-writer delta path) survives a
    /// crash exactly like a protocol-applied insertion.
    #[test]
    fn insert_base_fact_is_durable() {
        let mut peer = DbPeer::new(NodeId(1), Database::new(schema()), durable_config());
        let st = PeerStorage::new(Box::<p2p_storage::MemoryBackend>::default(), 0);
        peer.attach_storage(st).unwrap();
        peer.insert_base_fact("a", vec![Val::Int(41)]).unwrap();
        peer.insert_base_fact("a", vec![Val::Int(41)]).unwrap(); // dup: one WAL frame
        peer.crash_volatile_state();
        assert!(peer.database().is_empty());
        let mut ctx = Context::new(p2p_net::SimTime::ZERO, NodeId(1));
        peer.restart_and_resync(&mut ctx);
        assert_eq!(peer.database().total_tuples(), 1, "writer delta recovered");
    }

    /// A head that crashed before durably processing **any** answer resyncs
    /// under the fallback session tag; the repair must still merge, derive
    /// the head rule, and leave no session entry behind once the last
    /// outstanding resync drains.
    #[test]
    fn fallback_tagged_resync_repairs_and_drains() {
        use p2p_net::SessionId;

        let schema = DatabaseSchema::parse("a(x: int).").unwrap();
        let mut peer = DbPeer::new(NodeId(0), Database::new(schema), durable_config());
        let resolve = |s: &str| match s {
            "A" => Some(NodeId(0)),
            "B" => Some(NodeId(1)),
            _ => None,
        };
        let rule =
            crate::rule::CoordinationRule::parse("r", "B:b(X) => A:a(X)", None, &resolve).unwrap();
        let rule_id = rule.id;
        peer.install_rule(rule.clone());
        let st = PeerStorage::new(Box::<p2p_storage::MemoryBackend>::default(), 0);
        peer.attach_storage(st).unwrap();

        peer.crash_volatile_state();
        let mut ctx = Context::new(p2p_net::SimTime::ZERO, NodeId(0));
        peer.restart_and_resync(&mut ctx);
        // No durable answer marks existed, so the one request carries the
        // fallback tag and an empty cursor.
        let out = ctx.take_outgoing();
        assert_eq!(out.len(), 1);
        let ProtocolMsg::ResyncRequest { session, since, .. } = &*out[0].msg else {
            panic!("expected a resync request, got {:?}", out[0].msg);
        };
        assert_eq!(*session, SessionId::default());
        assert!(since.is_empty());

        // The body's answer under that tag must still repair the head rule.
        let mut marks = BTreeMap::new();
        marks.insert(Arc::<str>::from("b"), 1usize);
        let mut ctx = Context::new(p2p_net::SimTime::ZERO, NodeId(0));
        use p2p_net::Peer as _;
        peer.on_message(
            NodeId(1),
            ProtocolMsg::ResyncAnswer {
                session: SessionId::default(),
                rule: rule_id,
                rows: AnswerRows {
                    vars: rule.parts[0].vars.clone(),
                    rows: vec![Tuple::new(vec![Val::Int(7)])],
                    marks,
                    ..Default::default()
                },
            },
            &mut ctx,
        );
        assert!(
            peer.database()
                .relation("a")
                .unwrap()
                .contains(&[Val::Int(7)]),
            "the repair must derive the head rule without a redrive"
        );
        assert!(peer.pending_resync.is_empty());
        assert_eq!(
            peer.session_table_len(),
            0,
            "repair-only entries are swept once the last resync drains"
        );
    }

    /// A crash wipes the whole per-session table; recovery re-creates one
    /// entry per session the durable answer log knows, caches primed.
    #[test]
    fn recovery_primes_caches_per_session() {
        let mut peer = DbPeer::new(NodeId(1), Database::new(schema()), durable_config());
        let st = PeerStorage::new(Box::<p2p_storage::MemoryBackend>::default(), 0);
        peer.attach_storage(st).unwrap();
        let s1 = SessionId::new(NodeId(0), 1);
        let s2 = SessionId::new(NodeId(2), 2);
        for (sid, v) in [(s1, 1i64), (s2, 2)] {
            let mut marks = BTreeMap::new();
            marks.insert(Arc::<str>::from("a"), v as usize);
            peer.log_answer_mark(
                sid,
                RuleId(9),
                NodeId(3),
                &AnswerRows {
                    vars: vec![Arc::from("X")],
                    rows: vec![Tuple::new(vec![Val::Int(v)])],
                    marks,
                    ..Default::default()
                },
            );
        }
        peer.crash_volatile_state();
        assert_eq!(peer.session_table_len(), 0, "crash wipes the table");
        let mut ctx = Context::new(p2p_net::SimTime::ZERO, NodeId(1));
        peer.restart_and_resync(&mut ctx);
        assert_eq!(peer.session_table_len(), 2, "one primed entry per session");
        for (sid, v) in [(s1, 1i64), (s2, 2)] {
            let cache = &peer.session_state(sid).unwrap().rnd.wave_cache[&(RuleId(9), NodeId(3))];
            assert_eq!(cache.rows, vec![Tuple::new(vec![Val::Int(v)])]);
        }
    }
}
