//! The peer state machine.
//!
//! One [`DbPeer`] per node implements `p2p_net::Peer<ProtocolMsg>` and runs
//! every protocol of the paper:
//!
//! * topology discovery (algorithms A1–A3) — [`discovery`];
//! * the eager (asynchronous) distributed update (A4–A6 with
//!   subscription-based re-answering and Dijkstra–Scholten termination) —
//!   [`eager`];
//! * the synchronous rounds update (the paper's "synchronous alternative")
//!   — [`rounds`];
//! * super-peer duties (driving, dynamic changes, statistics collection,
//!   rule-file broadcast — Section 5) — [`superpeer`];
//! * durable peers: WAL logging, crash recovery from storage, and the
//!   watermark-based resync protocol — [`durability`].
//!
//! ## Concurrent update sessions
//!
//! The update session is a first-class object: every session-tagged message
//! carries a [`SessionId`] `(root, epoch)` and is routed to that session's
//! entry in the peer's [`DbPeer::sessions`] table. Any number of sessions —
//! initiated by any nodes — run interleaved; each owns its full protocol
//! state ([`SessionState`]: eager subscriptions and fragment progress, its
//! own Dijkstra–Scholten detector, rounds-mode wave state with session-
//! scoped watermarks and caches). Entries are **retired** when the session's
//! terminal broadcast lands (`Fixpoint` in eager mode, `RoundsClosed` in
//! rounds mode) — the table must be empty again after every session reaches
//! its fix-point, so interleaving leaks no state. A message of a newer
//! same-root session retires any stranded state of older epochs (the
//! churn-redrive path).
//!
//! Handlers are atomic; all cross-node effects go through the runtime
//! context, and every observable iteration order is deterministic.

pub mod discovery;
pub mod durability;
pub mod eager;
pub mod rounds;
pub mod superpeer;
pub mod tables;

use crate::config::{SystemConfig, UpdateMode};
use crate::messages::ProtocolMsg;
use crate::rule::{CoordinationRule, RuleId};
use crate::stats::{ClosedBy, PeerStats};
use crate::termination::{AckDecision, DiffusingState, Disengage};
use p2p_net::{Context, Peer, SessionId};
use p2p_relational::chase::{ChaseConfig, ChaseState};
use p2p_relational::fxhash::{FxHashMap, FxHashSet};
use p2p_relational::{ConstCatalog, Database, NullFactory, SymId, Tuple, Val};
use p2p_topology::NodeId;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;

pub use discovery::DiscoveryState;
pub use eager::{EagerState, PartProgress, Subscription};
pub use rounds::RoundsState;
pub use superpeer::SuperState;
pub use tables::VecMap;

/// Everything one peer holds for one update session. One entry per
/// interleaved session lives in [`DbPeer::sessions`]; the entry is created
/// on first contact with the session's traffic and retired when the
/// session's terminal broadcast lands.
#[derive(Debug, Clone, Default)]
pub struct SessionState {
    /// Eager-mode state: fragment progress, subscriptions, closure flags.
    pub upd: EagerState,
    /// This session's own Dijkstra–Scholten detector — one diffusing
    /// computation per session, as Dijkstra–Scholten intends.
    pub ds: DiffusingState,
    /// Rounds-mode state: echo tree, session-scoped wave watermarks and
    /// fragment caches.
    pub rnd: RoundsState,
    /// Root side: the root already broadcast for the current quiet period.
    /// (The broadcast generation itself lives in
    /// [`SuperState::fixpoint_generation`] so it survives a post-fixpoint
    /// re-wake of the session.)
    pub root_quiet: bool,
    /// Terminal broadcast processed — the dispatcher moves the entry to
    /// [`DbPeer::done`] instead of re-inserting it.
    pub retired: bool,
}

impl SessionState {
    /// The peer joined this session (as opposed to a placeholder entry
    /// holding only recovered caches).
    pub fn joined(&self) -> bool {
        self.upd.active || self.rnd.active
    }

    /// `state_u == closed` for this session under the given mode.
    pub fn closed(&self, mode: UpdateMode) -> bool {
        match mode {
            UpdateMode::Eager => self.upd.closed,
            UpdateMode::Rounds => self.rnd.closed,
        }
    }

    /// Currently participating and not yet closed.
    pub fn open(&self, mode: UpdateMode) -> bool {
        self.joined() && !self.closed(mode)
    }

    /// Nothing worth keeping: never joined, not engaged in termination
    /// detection, and no recovered caches. Entries created as a side effect
    /// of dropped or ignored messages are swept through this.
    fn vacant(&self) -> bool {
        !self.joined()
            && !self.ds.engaged()
            && self.ds.deficit() == 0
            && self.rnd.wave_cache.is_empty()
            && self.rnd.wave_subs.is_empty()
    }
}

/// One rule's cached compiled plans, fingerprinted by the body fragment
/// they were compiled for. Rule ids are minted monotonically, but the
/// fragment equality check makes a stale hit impossible even if an id were
/// ever reused (or if a body peer serves different fragments under one id
/// across sessions).
#[derive(Debug, Clone)]
pub(crate) struct CachedPlans {
    /// The fragment the plans were compiled from.
    pub(crate) part: crate::rule::BodyPart,
    /// Full + per-atom delta plans.
    pub(crate) body: crate::joins::CompiledBody,
}

/// A database peer: local database, coordination rules targeting it, and
/// all protocol state.
#[derive(Debug)]
pub struct DbPeer {
    /// This node's id.
    pub(crate) id: NodeId,
    /// Whether this node is the designated super-peer.
    pub(crate) is_super: bool,
    /// Run configuration (shared across the network).
    pub(crate) config: SystemConfig,
    /// The local database (`LDB`).
    pub(crate) db: Database,
    /// Fresh-null mint for existential head variables.
    pub(crate) nulls: NullFactory,
    /// Chase bookkeeping (null depths).
    pub(crate) chase: ChaseState,
    /// Chase configuration.
    pub(crate) chase_cfg: ChaseConfig,
    /// Coordination rules whose head is this node (the paper: "initially
    /// each node knows all rules of which it is a target").
    pub(crate) rules: BTreeMap<RuleId, CoordinationRule>,
    /// Compiled-plan cache, one entry per rule this peer evaluates a body
    /// fragment for (head rules *and* fragments received via subscriptions
    /// or waves). Validated against the fragment on every hit; invalidated
    /// on `AddRule`/`DeleteRule`/`Unsubscribe`. Volatile: a crash clears it
    /// and the next evaluation recompiles.
    pub(crate) plans: FxHashMap<RuleId, CachedPlans>,
    /// Pipe neighbours (rule sources *and* rule targets, Section 5).
    pub(crate) pipes: BTreeSet<NodeId>,
    /// Whether this node lies on a dependency cycle (used by rounds mode to
    /// decide deferred vs. immediate wave answers; `true` is always safe).
    pub(crate) in_cycle: bool,
    /// Statistics module counters.
    pub(crate) stats: PeerStats,
    /// Discovery protocol state.
    pub(crate) disc: DiscoveryState,
    /// Per-session protocol state, keyed by session identity. The heart of
    /// the concurrent control plane: each interleaved session lives in its
    /// own entry and is retired on fix-point. Flat sorted-vec table
    /// ([`VecMap`]): epochs grow monotonically, so inserts land at the end.
    pub(crate) sessions: VecMap<SessionId, SessionState>,
    /// Sessions that closed and retired here, with the rounds executed
    /// (0 in eager mode) — the summary reports and supersession read.
    pub(crate) done: VecMap<SessionId, u32>,
    /// Super-peer driver state.
    pub(crate) sup: SuperState,
    /// Errors recorded during handlers (runtime handlers cannot return
    /// `Result`; the system driver surfaces these after the run).
    pub(crate) errors: Vec<String>,
    /// Exactly-once dedup: `(sender, msg_id)` pairs already processed.
    /// Fault-injected duplicate deliveries share the sender-assigned id, so
    /// dropping repeats here keeps both the data plane and the
    /// Dijkstra–Scholten accounting sound under duplication (TCP/JXTA pipes
    /// provide the same guarantee).
    pub(crate) seen_msgs: FxHashSet<(NodeId, u64)>,
    /// Durable store (WAL + snapshots) when `SystemConfig::durability` is
    /// on; `None` = the amnesia baseline, where a crash loses everything.
    pub(crate) storage: Option<p2p_storage::PeerStorage>,
    /// Resync requests sent after a restart whose answers have not arrived
    /// yet, keyed by the session they repair, with the watermark each was
    /// asked from. While non-empty the peer refuses to close **any**
    /// session (a lost resync message must stall, never silently lose
    /// data) and re-sends on every session (re-)entry — at-least-once
    /// delivery, idempotent at both ends.
    pub(crate) pending_resync: BTreeMap<(SessionId, RuleId, NodeId), BTreeMap<Arc<str>, usize>>,
    /// Per-pipe dictionary state: the interned symbols each neighbour is
    /// known to know (we shipped them a definition, or they shipped us one).
    /// Drives the first-use dictionary deltas in [`DbPeer::make_answer_rows`]
    /// — each constant string crosses each pipe at most once. Volatile: a
    /// crash forgets it and later answers conservatively re-ship.
    pub(crate) sym_sent: VecMap<NodeId, FxHashSet<SymId>>,
}

impl DbPeer {
    /// Creates a peer.
    pub fn new(id: NodeId, db: Database, config: SystemConfig) -> Self {
        DbPeer {
            id,
            is_super: false,
            chase_cfg: ChaseConfig {
                max_null_depth: config.max_null_depth,
            },
            config,
            db,
            nulls: NullFactory::new(id.0),
            chase: ChaseState::new(),
            rules: BTreeMap::new(),
            plans: FxHashMap::default(),
            pipes: BTreeSet::new(),
            in_cycle: true,
            stats: PeerStats::default(),
            disc: DiscoveryState::default(),
            sessions: VecMap::default(),
            done: VecMap::default(),
            sup: SuperState::default(),
            errors: Vec::new(),
            seen_msgs: FxHashSet::default(),
            storage: None,
            pending_resync: BTreeMap::new(),
            sym_sent: VecMap::default(),
        }
    }

    /// Marks this node as the designated super-peer (any node may root a
    /// session; the super-peer additionally answers driver commands like
    /// statistics collection and rule broadcast).
    pub fn make_super(&mut self, all_nodes: impl Into<Arc<[NodeId]>>) {
        self.is_super = true;
        self.sup.all_nodes = all_nodes.into();
    }

    /// Installs the node roster. The roster is `Arc`-shared: the system
    /// builder hands every peer the same allocation, so building n peers
    /// costs n refcounts, not n copies of an n-entry list.
    pub fn set_roster(&mut self, all_nodes: impl Into<Arc<[NodeId]>>) {
        self.sup.all_nodes = all_nodes.into();
    }

    /// Installs a rule with head at this node. Any cached plan for the id is
    /// invalidated (`AddRule` may replace a rule's body).
    pub fn install_rule(&mut self, rule: CoordinationRule) {
        debug_assert_eq!(rule.head_node, self.id);
        for p in &rule.parts {
            self.pipes.insert(p.node);
        }
        self.plans.remove(&rule.id);
        self.rules.insert(rule.id, rule);
    }

    /// Registers a pipe neighbour (rule sources learn their targets when the
    /// target opens the pipe).
    pub fn add_pipe(&mut self, neighbor: NodeId) {
        if neighbor != self.id {
            self.pipes.insert(neighbor);
        }
    }

    /// Sets the cyclicity hint: whether this node lies on a dependency
    /// cycle (rounds mode uses it to choose deferred vs. immediate wave
    /// answers; `true` is always safe).
    pub fn set_cycle_hint(&mut self, in_cycle: bool) {
        self.in_cycle = in_cycle;
    }

    // ----------------------------------------------------------------
    // Read accessors (assertions, reports, baselines)
    // ----------------------------------------------------------------

    /// Node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The local database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable database access (workload seeding).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Statistics counters.
    pub fn stats(&self) -> &PeerStats {
        &self.stats
    }

    /// `state_u == closed`, summarised over sessions: every session this
    /// peer is currently participating in has closed — or, with no live
    /// participation, at least one session completed here. A peer that
    /// never saw any session (or whose sessions are stranded open) reads
    /// `false`.
    pub fn update_closed(&self) -> bool {
        let joined: Vec<&SessionState> = self.sessions.values().filter(|st| st.joined()).collect();
        if joined.is_empty() {
            !self.done.is_empty()
        } else {
            joined.iter().all(|st| st.closed(self.config.mode))
        }
    }

    /// Whether one specific session reached closure at this peer: a live
    /// entry that closed, or a retired one. Peers with rules that were
    /// never reached by the session read `false` (Lemma 1: closed ⇔
    /// fix-point reached *here*).
    pub fn session_closed(&self, sid: SessionId) -> bool {
        match self.sessions.get(&sid) {
            Some(st) => st.joined() && st.closed(self.config.mode),
            None => self.done.contains_key(&sid),
        }
    }

    /// Rounds executed for one session at this peer (0 in eager mode or if
    /// unknown).
    pub fn session_rounds(&self, sid: SessionId) -> u32 {
        match self.sessions.get(&sid) {
            Some(st) => st.rnd.rounds_done,
            None => self.done.get(&sid).copied().unwrap_or(0),
        }
    }

    /// The current round of one session (rounds-mode redrive probe).
    pub fn session_round(&self, sid: SessionId) -> u32 {
        self.sessions.get(&sid).map(|st| st.rnd.round).unwrap_or(0)
    }

    /// Live session-table entries. The retirement invariant every test can
    /// lean on: after all sessions reach their fix-point, this is 0 — no
    /// leaked `DiffusingState`, watermarks or fragment caches.
    pub fn session_table_len(&self) -> usize {
        self.sessions.len()
    }

    /// Read access to one live session entry (assertions).
    pub fn session_state(&self, sid: SessionId) -> Option<&SessionState> {
        self.sessions.get(&sid)
    }

    /// Sessions that completed and retired at this peer.
    pub fn sessions_done(&self) -> usize {
        self.done.len()
    }

    /// How the node closed (most recent closure event).
    pub fn closed_by(&self) -> ClosedBy {
        self.stats.closed_by
    }

    /// `state_d == closed`.
    pub fn discovery_closed(&self) -> bool {
        self.disc.state_closed
    }

    /// Whether this node participated in a discovery at all (nodes outside
    /// the initiating owner's dependency-reachable region never do — the
    /// paper's single-owner discovery has exactly this footprint).
    pub fn discovery_started(&self) -> bool {
        self.disc.started
    }

    /// Maximal dependency paths learned in discovery (None before closure).
    pub fn paths(&self) -> Option<&[Vec<NodeId>]> {
        self.disc.paths.as_deref()
    }

    /// Dependency edges learned in discovery.
    pub fn known_edges(&self) -> &BTreeSet<(NodeId, NodeId)> {
        &self.disc.edges
    }

    /// Errors recorded while running.
    pub fn errors(&self) -> &[String] {
        &self.errors
    }

    /// Rules currently installed at this node.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    // ----------------------------------------------------------------
    // Shared helpers
    // ----------------------------------------------------------------

    /// Records a handler-side error.
    pub(crate) fn fail(&mut self, err: impl ToString) {
        self.errors.push(err.to_string());
    }

    /// Dependency edges induced by this node's own rules.
    pub(crate) fn own_edges(&self) -> BTreeSet<(NodeId, NodeId)> {
        self.rules
            .values()
            .flat_map(|r| r.parts.iter().map(|p| (self.id, p.node)))
            .collect()
    }

    /// Distinct body nodes of this node's rules (its dependency successors).
    pub(crate) fn successors(&self) -> BTreeSet<NodeId> {
        self.rules
            .values()
            .flat_map(|r| r.parts.iter().map(|p| p.node))
            .collect()
    }

    /// Evaluates one fragment over the local database via the compiled-plan
    /// cache, with statistics and processing-cost accounting.
    pub(crate) fn eval_part_local(
        &mut self,
        rule: RuleId,
        part: &crate::rule::BodyPart,
        ctx: &mut Context<ProtocolMsg>,
    ) -> Vec<Tuple> {
        self.stats.local_evaluations += 1;
        match self.eval_part_rows(rule, part, None) {
            Ok(rows) => {
                let cost =
                    p2p_net::SimTime(self.config.cost_per_tuple.as_micros() * rows.len() as u64);
                ctx.charge(cost);
                rows
            }
            Err(e) => {
                self.fail(format!("fragment evaluation failed: {e}"));
                Vec::new()
            }
        }
    }

    /// Delta-evaluates one fragment (rows derived from facts inserted since
    /// `watermarks`) via the compiled-plan cache, with statistics and
    /// processing-cost accounting.
    pub(crate) fn eval_part_delta_local(
        &mut self,
        rule: RuleId,
        part: &crate::rule::BodyPart,
        watermarks: &BTreeMap<Arc<str>, usize>,
        ctx: &mut Context<ProtocolMsg>,
    ) -> Vec<Tuple> {
        self.stats.local_evaluations += 1;
        match self.eval_part_rows(rule, part, Some(watermarks)) {
            Ok(rows) => {
                let cost =
                    p2p_net::SimTime(self.config.cost_per_tuple.as_micros() * rows.len() as u64);
                ctx.charge(cost);
                rows
            }
            Err(e) => {
                self.fail(format!("fragment delta evaluation failed: {e}"));
                Vec::new()
            }
        }
    }

    /// Shared plan-cache path of [`DbPeer::eval_part_local`] /
    /// [`DbPeer::eval_part_delta_local`]: fetch (or compile) the fragment's
    /// [`crate::joins::CompiledBody`], execute it, and fold the work
    /// counters into [`PeerStats`]. `watermarks: None` is full evaluation;
    /// `Some(w)` the semi-naive delta. With `SystemConfig::plan_cache` off
    /// the fragment is recompiled per call; with
    /// `SystemConfig::persistent_indexes` off the executor rebuilds
    /// transient indexes per call (the legacy cost model).
    fn eval_part_rows(
        &mut self,
        rule: RuleId,
        part: &crate::rule::BodyPart,
        watermarks: Option<&BTreeMap<Arc<str>, usize>>,
    ) -> crate::error::CoreResult<Vec<Tuple>> {
        let use_indexes = self.config.persistent_indexes;
        let mut metrics = crate::joins::EvalMetrics::default();
        let rows = if self.config.plan_cache {
            if self.plans.get(&rule).is_some_and(|c| c.part == *part) {
                self.stats.plan_cache_hits += 1;
            } else {
                let body = crate::joins::compile_part(part, &self.db)?;
                self.plans.insert(
                    rule,
                    CachedPlans {
                        part: part.clone(),
                        body,
                    },
                );
            }
            // Disjoint field borrows: the cached plan is read while the
            // database is mutably borrowed (index creation only).
            let DbPeer { plans, db, .. } = self;
            let body = &plans.get(&rule).expect("cached above").body;
            match watermarks {
                Some(w) => crate::joins::eval_part_delta_planned(
                    body,
                    part,
                    db,
                    w,
                    use_indexes,
                    &mut metrics,
                ),
                None => crate::joins::eval_part_planned(body, part, db, use_indexes, &mut metrics),
            }
        } else {
            let body = crate::joins::compile_part(part, &self.db)?;
            match watermarks {
                Some(w) => crate::joins::eval_part_delta_planned(
                    &body,
                    part,
                    &mut self.db,
                    w,
                    use_indexes,
                    &mut metrics,
                ),
                None => crate::joins::eval_part_planned(
                    &body,
                    part,
                    &mut self.db,
                    use_indexes,
                    &mut metrics,
                ),
            }
        };
        self.stats.rows_scanned += metrics.rows_scanned;
        self.stats.index_probes += metrics.index_probes;
        rows
    }

    /// Joins the given fragment extensions for `rule` and chases the head
    /// into the local database. Returns the number of facts inserted.
    pub(crate) fn apply_rule(
        &mut self,
        rule_id: RuleId,
        parts: Vec<crate::joins::VarRows>,
    ) -> usize {
        let Some(rule) = self.rules.get(&rule_id).cloned() else {
            return 0;
        };
        let bindings = crate::joins::join_parts(&parts, &rule.join_constraints);
        self.apply_rule_bindings(&rule, &bindings)
    }

    /// Chases already-joined bindings for `rule` into the local database.
    /// Returns the number of facts inserted.
    pub(crate) fn apply_rule_bindings(
        &mut self,
        rule: &crate::rule::CoordinationRule,
        bindings: &crate::joins::VarRows,
    ) -> usize {
        match crate::joins::apply_rule_head(
            rule,
            bindings,
            &mut self.db,
            &mut self.nulls,
            &mut self.chase,
            &self.chase_cfg,
        ) {
            Ok(outcome) => {
                self.stats.tuples_inserted += outcome.inserted.len() as u64;
                self.stats.nulls_minted += outcome.nulls_minted as u64;
                self.log_insertions(&outcome.inserted);
                outcome.inserted.len()
            }
            Err(e) => {
                self.fail(format!("rule {} application failed: {e}", rule.name));
                0
            }
        }
    }

    /// Builds the [`crate::messages::AnswerRows`] payload for shipping to
    /// `to`: collects chase depths of any nulls on board and attaches the
    /// first-use dictionary delta — `(symbol, string)` definitions for
    /// interned constants this peer has never shipped down that pipe.
    pub(crate) fn make_answer_rows(
        &mut self,
        to: NodeId,
        vars: &[Arc<str>],
        rows: Vec<Tuple>,
    ) -> crate::messages::AnswerRows {
        let mut null_depths = Vec::new();
        let mut seen = HashSet::new();
        for t in &rows {
            for (id, depth) in self.chase.depths_for(t) {
                if seen.insert(id) {
                    null_depths.push((id, depth));
                }
            }
        }
        let known = self.sym_sent.or_default(to);
        let fresh: Vec<SymId> = rows
            .iter()
            .flat_map(|t| t.values())
            .filter_map(Val::as_sym)
            .filter(|id| known.insert(*id))
            .collect();
        let dict = ConstCatalog::global().export(fresh);
        self.stats.dict_entries_sent += dict.len() as u64;
        let payload = crate::messages::AnswerRows {
            vars: vars.to_vec(),
            rows,
            null_depths,
            dict,
            // With durability on, the answerer's current watermarks ride
            // along so durable receivers can log a resync cursor (see
            // `peer::durability`). Without it nobody would log them, so the
            // map (and its wire bytes) stays empty — keeping the default
            // configuration's byte accounting identical to the delta-wave
            // baselines.
            marks: if self.config.durability {
                self.db.watermarks()
            } else {
                BTreeMap::new()
            },
        };
        // Data-plane byte accounting (experiments e16/e18 only — each side
        // of the comparison re-encodes the payload, so it is opt-in): what
        // this payload costs on the wire, what it would have cost
        // pre-interning (strings inline, no dictionary), and what the
        // binary codec packs it into.
        if self.config.measure_payload_bytes {
            self.stats.payload_bytes += payload.wire_size() as u64;
            self.stats.payload_bytes_legacy += payload.wire_size_legacy() as u64;
            self.stats.payload_bytes_binary += crate::codec::encoded_rows_len(&payload) as u64;
        }
        payload
    }

    /// Records null depths arriving with an answer.
    pub(crate) fn absorb_null_depths(&mut self, rows: &crate::messages::AnswerRows) {
        for (id, depth) in &rows.null_depths {
            self.chase.record(*id, *depth);
        }
    }

    /// Folds an answer's dictionary delta into the local catalog and
    /// records that `from` knows those symbols (no need to ship their
    /// definitions back). In one process every peer shares the catalog, so
    /// the absorb is an identity map; across processes (the socket
    /// runtime) the sender's `SymId`s are its own interning order, and the
    /// returned [`SymRemap`] rewrites the answer's rows and dictionary
    /// into this process's ids before anything touches the database.
    pub(crate) fn absorb_dict(&mut self, from: NodeId, rows: &mut crate::messages::AnswerRows) {
        if rows.dict.is_empty() {
            return;
        }
        let remap = ConstCatalog::global().absorb(&rows.dict);
        if !remap.is_identity() {
            for tuple in &mut rows.rows {
                if tuple
                    .values()
                    .any(|v| matches!(v, p2p_relational::Val::Sym(id) if remap.map(*id) != *id))
                {
                    let mapped: Vec<p2p_relational::Val> = tuple
                        .values()
                        .map(|v| match v {
                            p2p_relational::Val::Sym(id) => {
                                p2p_relational::Val::Sym(remap.map(*id))
                            }
                            other => *other,
                        })
                        .collect();
                    *tuple = p2p_relational::Tuple::new(mapped);
                }
            }
            for (id, _) in &mut rows.dict {
                *id = remap.map(*id);
            }
        }
        let known = self.sym_sent.or_default(from);
        known.extend(rows.dict.iter().map(|(id, _)| *id));
    }

    /// Sends a Dijkstra–Scholten *basic* message of one session (eager
    /// mode): counts the deficit on that session's detector and wakes its
    /// root-quiet flag.
    pub(crate) fn send_basic(
        &mut self,
        st: &mut SessionState,
        ctx: &mut Context<ProtocolMsg>,
        to: NodeId,
        msg: ProtocolMsg,
    ) {
        debug_assert!(msg.is_basic(), "send_basic used for a control message");
        st.ds.on_send();
        st.root_quiet = false;
        ctx.send(to, msg);
    }

    /// Fan-out variant of [`DbPeer::send_basic`]: one shared payload for the
    /// whole target set ([`Context::send_to_many`]), with the session's
    /// Dijkstra–Scholten deficit charged once per receiver.
    pub(crate) fn send_basic_many(
        &mut self,
        st: &mut SessionState,
        ctx: &mut Context<ProtocolMsg>,
        targets: impl IntoIterator<Item = NodeId>,
        msg: ProtocolMsg,
    ) {
        debug_assert!(msg.is_basic(), "send_basic_many used for a control message");
        let before = ctx.pending_sends();
        ctx.send_to_many(targets, msg);
        let sent = ctx.pending_sends() - before;
        for _ in 0..sent {
            st.ds.on_send();
        }
        if sent > 0 {
            st.root_quiet = false;
        }
    }

    /// Post-event hook for one session: runs Dijkstra–Scholten
    /// disengagement and, at the session's root, the fix-point broadcast.
    fn after_event(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        if self.config.mode != UpdateMode::Eager {
            return;
        }
        match st.ds.try_disengage() {
            Disengage::None => {}
            Disengage::AckParent(parent) => ctx.send(parent, ProtocolMsg::Ack { session: sid }),
            Disengage::RootTerminated => {
                if st.ds.is_root() && st.upd.active && !st.root_quiet {
                    st.root_quiet = true;
                    self.broadcast_fixpoint(st, sid, ctx);
                }
            }
        }
    }

    // ----------------------------------------------------------------
    // Session dispatch
    // ----------------------------------------------------------------

    /// True iff traffic of `sid` is stale here: a newer session of the same
    /// root is already known (live or completed) — the supersession
    /// relation that retires churn-stranded epochs. `SessionId` orders
    /// root-first, so one range probe past `sid` answers this in
    /// O(log sessions) instead of scanning both maps.
    fn session_is_stale(&self, sid: SessionId) -> bool {
        fn newer_same_root<V>(map: &VecMap<SessionId, V>, sid: SessionId) -> bool {
            map.range((
                std::ops::Bound::Excluded(sid),
                std::ops::Bound::Included(SessionId::new(sid.root, u64::MAX)),
            ))
            .next()
            .is_some()
        }
        newer_same_root(&self.sessions, sid) || newer_same_root(&self.done, sid)
    }

    /// Retires live entries of older same-root sessions when `sid`'s first
    /// message arrives: a churn-stranded epoch can leave a permanent
    /// Dijkstra–Scholten deficit (acks addressed to a crashed peer were
    /// dropped), which would otherwise leak and wedge nothing — but the
    /// table must not grow without bound. Re-drives start from quiescence,
    /// so nothing of the old session is in flight and dropping is safe.
    fn supersede_older(&mut self, sid: SessionId) {
        let older: Vec<SessionId> = self
            .sessions
            .range(SessionId::new(sid.root, 0)..sid)
            .map(|(k, _)| *k)
            .collect();
        for k in older {
            self.sessions.remove(&k);
        }
    }

    /// Message kinds that may re-create state for a completed session: a
    /// dynamic change arriving after the fix-point broadcast legitimately
    /// re-opens the session (the root then re-quiesces and re-broadcasts).
    /// A row-carrying `Answer` re-wakes too — a re-woken region may cascade
    /// data to a subscriber that already retired, and dropping it would
    /// lose derived facts (the defensive re-join in `on_answer`).
    fn can_rewake(msg: &ProtocolMsg) -> bool {
        match msg {
            ProtocolMsg::StartUpdate { .. }
            | ProtocolMsg::StartScopedUpdate { .. }
            | ProtocolMsg::UpdateFlood { .. }
            | ProtocolMsg::Query { .. }
            | ProtocolMsg::AddRule { .. }
            | ProtocolMsg::DeleteRule { .. }
            | ProtocolMsg::ResumeRounds { .. } => true,
            ProtocolMsg::Answer { rows, .. } => !rows.rows.is_empty(),
            _ => false,
        }
    }

    /// Minimal response to a message of a stale or completed session, so
    /// the sender's bookkeeping drains without re-creating any state: basic
    /// messages get their Dijkstra–Scholten ack, wave queries an empty
    /// stale acknowledgement, round floods a clean echo.
    fn acknowledge_stale(
        &mut self,
        from: NodeId,
        sid: SessionId,
        msg: &ProtocolMsg,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        // Delivery counters keep their transport-level meaning even for
        // traffic of finished sessions.
        match msg {
            ProtocolMsg::Answer { .. }
            | ProtocolMsg::WaveAnswer { .. }
            | ProtocolMsg::WaveAnswerDelta { .. } => self.stats.answers_received += 1,
            ProtocolMsg::Query { .. } | ProtocolMsg::WaveQuery { .. } => {
                self.stats.queries_received += 1
            }
            _ => {}
        }
        if self.config.mode == UpdateMode::Eager && msg.is_basic() {
            ctx.send(from, ProtocolMsg::Ack { session: sid });
            return;
        }
        match msg {
            ProtocolMsg::WaveQuery {
                round, rule, part, ..
            } => {
                self.stats.stale_answers_sent += 1;
                let payload = crate::messages::AnswerRows {
                    vars: part.vars.clone(),
                    ..Default::default()
                };
                ctx.send(
                    from,
                    ProtocolMsg::WaveAnswer {
                        session: sid,
                        round: *round,
                        rule: *rule,
                        rows: payload,
                    },
                );
            }
            ProtocolMsg::RoundStart { round, .. } => {
                ctx.send(
                    from,
                    ProtocolMsg::RoundEcho {
                        session: sid,
                        round: *round,
                        dirty: false,
                    },
                );
            }
            _ => {}
        }
    }

    /// Re-inserts a session entry after an event, retiring it if its
    /// terminal broadcast was processed and sweeping placeholder entries
    /// that hold nothing. The `done` summary keeps only the newest
    /// completed epoch per root — staleness and reporting both read the
    /// newest entry, so a long-lived system's summary stays bounded by its
    /// root count, not its session count.
    fn finish_session_event(&mut self, sid: SessionId, st: SessionState) {
        if st.retired {
            let superseded: Vec<SessionId> = self
                .done
                .range(SessionId::new(sid.root, 0)..sid)
                .map(|(k, _)| *k)
                .collect();
            for k in superseded {
                self.done.remove(&k);
            }
            self.done.insert(sid, st.rnd.rounds_done);
        } else if !st.vacant() {
            self.sessions.insert(sid, st);
        }
    }

    /// Routes one session-tagged message: takes the session's entry out of
    /// the table (creating it on first contact), runs the per-session
    /// Dijkstra–Scholten transport layer and the protocol handler, then
    /// re-inserts or retires the entry.
    fn on_session_message(
        &mut self,
        from: NodeId,
        sid: SessionId,
        msg: ProtocolMsg,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        // Dijkstra–Scholten ack fast path: debit the session's detector.
        if let ProtocolMsg::Ack { .. } = msg {
            if let Some(mut st) = self.sessions.remove(&sid) {
                st.ds.on_ack();
                self.after_event(&mut st, sid, ctx);
                self.finish_session_event(sid, st);
            }
            return;
        }

        // Crash-recovery resync is control-plane: it repairs the database
        // regardless of what this peer currently holds for the session
        // (the requester may be reconciling an epoch the redrive already
        // superseded, or a fragment never durably answered under any
        // session), so both directions bypass the staleness rules below —
        // a dropped repair would leave `pending_resync` outstanding forever
        // and wedge every later closure.
        if matches!(msg, ProtocolMsg::ResyncRequest { .. }) {
            if let ProtocolMsg::ResyncRequest {
                rule, part, since, ..
            } = msg
            {
                self.on_resync_request(from, sid, rule, part, since, ctx);
            }
            return;
        }
        if matches!(msg, ProtocolMsg::ResyncAnswer { .. }) {
            if let ProtocolMsg::ResyncAnswer { rule, rows, .. } = msg {
                self.on_resync_answer(sid, from, rule, rows);
            }
            return;
        }

        if self.session_is_stale(sid) || (self.done.contains_key(&sid) && !Self::can_rewake(&msg)) {
            self.acknowledge_stale(from, sid, &msg, ctx);
            return;
        }
        self.supersede_older(sid);
        self.done.remove(&sid);

        let mut st = self.sessions.remove(&sid).unwrap_or_default();
        let ack = if self.config.mode == UpdateMode::Eager && msg.is_basic() {
            Some(st.ds.on_receive(from))
        } else {
            None
        };

        match msg {
            ProtocolMsg::StartUpdate { .. } => self.start_update(&mut st, sid, ctx),
            ProtocolMsg::StartScopedUpdate { .. } => self.start_scoped_update(&mut st, sid, ctx),
            ProtocolMsg::UpdateFlood { .. } => self.on_update_flood(&mut st, sid, from, ctx),
            ProtocolMsg::Query { rule, part, sn, .. } => {
                self.on_query(&mut st, sid, from, rule, part, sn, ctx)
            }
            ProtocolMsg::Answer {
                rule,
                rows,
                complete,
                reopen,
                ..
            } => self.on_answer(&mut st, sid, from, rule, rows, complete, reopen, ctx),
            ProtocolMsg::Unsubscribe { rule, .. } => self.on_unsubscribe(&mut st, from, rule),
            ProtocolMsg::Fixpoint { generation, .. } => self.on_fixpoint(&mut st, generation),
            ProtocolMsg::AddRule { rule, .. } => self.on_add_rule(&mut st, sid, rule, ctx),
            ProtocolMsg::DeleteRule { rule, .. } => self.on_delete_rule(&mut st, sid, rule, ctx),
            ProtocolMsg::RoundStart { round, .. } => {
                self.on_round_start(&mut st, sid, from, round, ctx)
            }
            ProtocolMsg::RoundEcho { round, dirty, .. } => {
                self.on_round_echo(&mut st, sid, round, dirty, ctx)
            }
            ProtocolMsg::WaveQuery {
                round, rule, part, ..
            } => self.on_wave_query(&mut st, sid, from, round, rule, part, ctx),
            ProtocolMsg::WaveAnswer {
                round, rule, rows, ..
            } => self.on_wave_answer(&mut st, sid, from, round, rule, rows, false, ctx),
            ProtocolMsg::WaveAnswerDelta {
                round, rule, rows, ..
            } => self.on_wave_answer(&mut st, sid, from, round, rule, rows, true, ctx),
            ProtocolMsg::RoundsClosed { rounds, .. } => self.on_rounds_closed(&mut st, rounds),
            ProtocolMsg::ResumeRounds { round, .. } => {
                self.on_resume_rounds(&mut st, sid, round, ctx)
            }
            // Session-less kinds and the resync pair never reach this
            // routing.
            _ => {}
        }

        if ack == Some(AckDecision::Immediate) {
            ctx.send(from, ProtocolMsg::Ack { session: sid });
        }
        self.after_event(&mut st, sid, ctx);
        self.finish_session_event(sid, st);
    }
}

impl Peer<ProtocolMsg> for DbPeer {
    fn on_envelope(
        &mut self,
        from: NodeId,
        msg_id: u64,
        msg: ProtocolMsg,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        // Exactly-once: fault-injected duplicates carry the same msg_id.
        if !self.seen_msgs.insert((from, msg_id)) {
            return;
        }
        self.on_message(from, msg, ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: ProtocolMsg, ctx: &mut Context<ProtocolMsg>) {
        ctx.charge(self.config.cost_per_message);

        if let Some(sid) = msg.session() {
            self.on_session_message(from, sid, msg, ctx);
            return;
        }

        match msg {
            // Driver commands (super-peer).
            ProtocolMsg::StartDiscovery => self.start_discovery(ctx),
            ProtocolMsg::ApplyChange { change } => self.apply_change(change, ctx),
            ProtocolMsg::CollectStats => self.on_collect_stats(from, ctx),
            ProtocolMsg::ResetStats => self.on_reset_stats(from, ctx),
            ProtocolMsg::BroadcastRules { rules } => self.on_broadcast_rules(from, rules, ctx),
            ProtocolMsg::StatsReport { stats } => self.on_stats_report(from, stats),

            // Discovery.
            ProtocolMsg::RequestNodes { owner } => self.on_request_nodes(from, owner, ctx),
            ProtocolMsg::DiscoveryAnswer {
                owner,
                edges,
                closed,
                finished,
            } => self.on_discovery_answer(from, owner, edges, closed, finished, ctx),
            ProtocolMsg::DiscoveryClosed => self.on_discovery_closed(),

            // Session-tagged kinds are routed above.
            _ => {}
        }
    }

    fn on_crash(&mut self) {
        self.crash_volatile_state();
    }

    fn on_restart(&mut self, ctx: &mut Context<ProtocolMsg>) {
        self.restart_and_resync(ctx);
    }
}
