//! The peer state machine.
//!
//! One [`DbPeer`] per node implements `p2p_net::Peer<ProtocolMsg>` and runs
//! every protocol of the paper:
//!
//! * topology discovery (algorithms A1–A3) — [`discovery`];
//! * the eager (asynchronous) distributed update (A4–A6 with
//!   subscription-based re-answering and Dijkstra–Scholten termination) —
//!   [`eager`];
//! * the synchronous rounds update (the paper's "synchronous alternative")
//!   — [`rounds`];
//! * super-peer duties (driving, dynamic changes, statistics collection,
//!   rule-file broadcast — Section 5) — [`superpeer`];
//! * durable peers: WAL logging, crash recovery from storage, and the
//!   watermark-based resync protocol — [`durability`].
//!
//! Handlers are atomic; all cross-node effects go through the runtime
//! context, and every observable iteration order is deterministic.

pub mod discovery;
pub mod durability;
pub mod eager;
pub mod rounds;
pub mod superpeer;

use crate::config::{SystemConfig, UpdateMode};
use crate::messages::ProtocolMsg;
use crate::rule::{CoordinationRule, RuleId};
use crate::stats::{ClosedBy, PeerStats};
use crate::termination::{AckDecision, DiffusingState, Disengage};
use p2p_net::{Context, Peer};
use p2p_relational::chase::{ChaseConfig, ChaseState};
use p2p_relational::{ConstCatalog, Database, NullFactory, SymId, Tuple, Val};
use p2p_topology::NodeId;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;

pub use discovery::DiscoveryState;
pub use eager::{EagerState, PartProgress, Subscription};
pub use rounds::RoundsState;
pub use superpeer::SuperState;

/// A database peer: local database, coordination rules targeting it, and
/// all protocol state.
#[derive(Debug)]
pub struct DbPeer {
    /// This node's id.
    pub(crate) id: NodeId,
    /// Whether this node is the designated super-peer.
    pub(crate) is_super: bool,
    /// Run configuration (shared across the network).
    pub(crate) config: SystemConfig,
    /// The local database (`LDB`).
    pub(crate) db: Database,
    /// Fresh-null mint for existential head variables.
    pub(crate) nulls: NullFactory,
    /// Chase bookkeeping (null depths).
    pub(crate) chase: ChaseState,
    /// Chase configuration.
    pub(crate) chase_cfg: ChaseConfig,
    /// Coordination rules whose head is this node (the paper: "initially
    /// each node knows all rules of which it is a target").
    pub(crate) rules: BTreeMap<RuleId, CoordinationRule>,
    /// Pipe neighbours (rule sources *and* rule targets, Section 5).
    pub(crate) pipes: BTreeSet<NodeId>,
    /// Whether this node lies on a dependency cycle (used by rounds mode to
    /// decide deferred vs. immediate wave answers; `true` is always safe).
    pub(crate) in_cycle: bool,
    /// Statistics module counters.
    pub(crate) stats: PeerStats,
    /// Discovery protocol state.
    pub(crate) disc: DiscoveryState,
    /// Eager update state.
    pub(crate) upd: EagerState,
    /// Dijkstra–Scholten state (eager mode).
    pub(crate) ds: DiffusingState,
    /// Rounds update state.
    pub(crate) rnd: RoundsState,
    /// Super-peer driver state.
    pub(crate) sup: SuperState,
    /// Errors recorded during handlers (runtime handlers cannot return
    /// `Result`; the system driver surfaces these after the run).
    pub(crate) errors: Vec<String>,
    /// Exactly-once dedup: `(sender, msg_id)` pairs already processed.
    /// Fault-injected duplicate deliveries share the sender-assigned id, so
    /// dropping repeats here keeps both the data plane and the
    /// Dijkstra–Scholten accounting sound under duplication (TCP/JXTA pipes
    /// provide the same guarantee).
    pub(crate) seen_msgs: HashSet<(NodeId, u64)>,
    /// Durable store (WAL + snapshots) when `SystemConfig::durability` is
    /// on; `None` = the amnesia baseline, where a crash loses everything.
    pub(crate) storage: Option<p2p_storage::PeerStorage>,
    /// Resync requests sent after a restart whose answers have not arrived
    /// yet, with the watermark each was asked from. While non-empty the
    /// peer refuses to close (a lost resync message must stall the
    /// session, never silently lose data) and re-sends on every session
    /// (re-)entry — at-least-once delivery, idempotent at both ends.
    pub(crate) pending_resync: BTreeMap<(RuleId, NodeId), BTreeMap<Arc<str>, usize>>,
    /// Per-pipe dictionary state: the interned symbols each neighbour is
    /// known to know (we shipped them a definition, or they shipped us one).
    /// Drives the first-use dictionary deltas in [`DbPeer::make_answer_rows`]
    /// — each constant string crosses each pipe at most once. Volatile: a
    /// crash forgets it and later answers conservatively re-ship.
    pub(crate) sym_sent: BTreeMap<NodeId, HashSet<SymId>>,
}

impl DbPeer {
    /// Creates a peer.
    pub fn new(id: NodeId, db: Database, config: SystemConfig) -> Self {
        DbPeer {
            id,
            is_super: false,
            chase_cfg: ChaseConfig {
                max_null_depth: config.max_null_depth,
            },
            config,
            db,
            nulls: NullFactory::new(id.0),
            chase: ChaseState::new(),
            rules: BTreeMap::new(),
            pipes: BTreeSet::new(),
            in_cycle: true,
            stats: PeerStats::default(),
            disc: DiscoveryState::default(),
            upd: EagerState::default(),
            ds: DiffusingState::new(),
            rnd: RoundsState::default(),
            sup: SuperState::default(),
            errors: Vec::new(),
            seen_msgs: HashSet::new(),
            storage: None,
            pending_resync: BTreeMap::new(),
            sym_sent: BTreeMap::new(),
        }
    }

    /// Marks this node as the super-peer, telling it the full node roster
    /// (the paper's super-peer reads the network's rule file, so global
    /// rosters are within its powers).
    pub fn make_super(&mut self, all_nodes: Vec<NodeId>) {
        self.is_super = true;
        self.sup.all_nodes = all_nodes;
    }

    /// Installs the node roster (every peer gets one at build time so any
    /// node can act as the root of a query-dependent update).
    pub fn set_roster(&mut self, all_nodes: Vec<NodeId>) {
        self.sup.all_nodes = all_nodes;
    }

    /// Installs a rule with head at this node.
    pub fn install_rule(&mut self, rule: CoordinationRule) {
        debug_assert_eq!(rule.head_node, self.id);
        for p in &rule.parts {
            self.pipes.insert(p.node);
        }
        self.rules.insert(rule.id, rule);
    }

    /// Registers a pipe neighbour (rule sources learn their targets when the
    /// target opens the pipe).
    pub fn add_pipe(&mut self, neighbor: NodeId) {
        if neighbor != self.id {
            self.pipes.insert(neighbor);
        }
    }

    /// Sets the cyclicity hint: whether this node lies on a dependency
    /// cycle (rounds mode uses it to choose deferred vs. immediate wave
    /// answers; `true` is always safe).
    pub fn set_cycle_hint(&mut self, in_cycle: bool) {
        self.in_cycle = in_cycle;
    }

    // ----------------------------------------------------------------
    // Read accessors (assertions, reports, baselines)
    // ----------------------------------------------------------------

    /// Node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The local database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable database access (workload seeding).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Statistics counters.
    pub fn stats(&self) -> &PeerStats {
        &self.stats
    }

    /// `state_u == closed`.
    pub fn update_closed(&self) -> bool {
        match self.config.mode {
            UpdateMode::Eager => self.upd.closed,
            UpdateMode::Rounds => self.rnd.closed,
        }
    }

    /// How the node closed.
    pub fn closed_by(&self) -> ClosedBy {
        self.stats.closed_by
    }

    /// `state_d == closed`.
    pub fn discovery_closed(&self) -> bool {
        self.disc.state_closed
    }

    /// Whether this node participated in a discovery at all (nodes outside
    /// the initiating owner's dependency-reachable region never do — the
    /// paper's single-owner discovery has exactly this footprint).
    pub fn discovery_started(&self) -> bool {
        self.disc.started
    }

    /// Maximal dependency paths learned in discovery (None before closure).
    pub fn paths(&self) -> Option<&[Vec<NodeId>]> {
        self.disc.paths.as_deref()
    }

    /// Dependency edges learned in discovery.
    pub fn known_edges(&self) -> &BTreeSet<(NodeId, NodeId)> {
        &self.disc.edges
    }

    /// Errors recorded while running.
    pub fn errors(&self) -> &[String] {
        &self.errors
    }

    /// Rules currently installed at this node.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    // ----------------------------------------------------------------
    // Shared helpers
    // ----------------------------------------------------------------

    /// Records a handler-side error.
    pub(crate) fn fail(&mut self, err: impl ToString) {
        self.errors.push(err.to_string());
    }

    /// Dependency edges induced by this node's own rules.
    pub(crate) fn own_edges(&self) -> BTreeSet<(NodeId, NodeId)> {
        self.rules
            .values()
            .flat_map(|r| r.parts.iter().map(|p| (self.id, p.node)))
            .collect()
    }

    /// Distinct body nodes of this node's rules (its dependency successors).
    pub(crate) fn successors(&self) -> BTreeSet<NodeId> {
        self.rules
            .values()
            .flat_map(|r| r.parts.iter().map(|p| p.node))
            .collect()
    }

    /// Evaluates one fragment over the local database, with statistics and
    /// processing-cost accounting.
    pub(crate) fn eval_part_local(
        &mut self,
        part: &crate::rule::BodyPart,
        ctx: &mut Context<ProtocolMsg>,
    ) -> Vec<Tuple> {
        self.stats.local_evaluations += 1;
        match crate::joins::eval_part(part, &self.db) {
            Ok(rows) => {
                let cost =
                    p2p_net::SimTime(self.config.cost_per_tuple.as_micros() * rows.len() as u64);
                ctx.charge(cost);
                rows
            }
            Err(e) => {
                self.fail(format!("fragment evaluation failed: {e}"));
                Vec::new()
            }
        }
    }

    /// Delta-evaluates one fragment (rows derived from facts inserted since
    /// `watermarks`), with statistics and processing-cost accounting.
    pub(crate) fn eval_part_delta_local(
        &mut self,
        part: &crate::rule::BodyPart,
        watermarks: &BTreeMap<Arc<str>, usize>,
        ctx: &mut Context<ProtocolMsg>,
    ) -> Vec<Tuple> {
        self.stats.local_evaluations += 1;
        match crate::joins::eval_part_delta(part, &self.db, watermarks) {
            Ok(rows) => {
                let cost =
                    p2p_net::SimTime(self.config.cost_per_tuple.as_micros() * rows.len() as u64);
                ctx.charge(cost);
                rows
            }
            Err(e) => {
                self.fail(format!("fragment delta evaluation failed: {e}"));
                Vec::new()
            }
        }
    }

    /// Joins the given fragment extensions for `rule` and chases the head
    /// into the local database. Returns the number of facts inserted.
    pub(crate) fn apply_rule(
        &mut self,
        rule_id: RuleId,
        parts: Vec<crate::joins::VarRows>,
    ) -> usize {
        let Some(rule) = self.rules.get(&rule_id).cloned() else {
            return 0;
        };
        let bindings = crate::joins::join_parts(&parts, &rule.join_constraints);
        self.apply_rule_bindings(&rule, &bindings)
    }

    /// Chases already-joined bindings for `rule` into the local database.
    /// Returns the number of facts inserted.
    pub(crate) fn apply_rule_bindings(
        &mut self,
        rule: &crate::rule::CoordinationRule,
        bindings: &crate::joins::VarRows,
    ) -> usize {
        match crate::joins::apply_rule_head(
            rule,
            bindings,
            &mut self.db,
            &mut self.nulls,
            &mut self.chase,
            &self.chase_cfg,
        ) {
            Ok(outcome) => {
                self.stats.tuples_inserted += outcome.inserted.len() as u64;
                self.stats.nulls_minted += outcome.nulls_minted as u64;
                self.log_insertions(&outcome.inserted);
                outcome.inserted.len()
            }
            Err(e) => {
                self.fail(format!("rule {} application failed: {e}", rule.name));
                0
            }
        }
    }

    /// Builds the [`crate::messages::AnswerRows`] payload for shipping to
    /// `to`: collects chase depths of any nulls on board and attaches the
    /// first-use dictionary delta — `(symbol, string)` definitions for
    /// interned constants this peer has never shipped down that pipe.
    pub(crate) fn make_answer_rows(
        &mut self,
        to: NodeId,
        vars: &[Arc<str>],
        rows: Vec<Tuple>,
    ) -> crate::messages::AnswerRows {
        let mut null_depths = Vec::new();
        let mut seen = HashSet::new();
        for t in &rows {
            for (id, depth) in self.chase.depths_for(t) {
                if seen.insert(id) {
                    null_depths.push((id, depth));
                }
            }
        }
        let known = self.sym_sent.entry(to).or_default();
        let fresh: Vec<SymId> = rows
            .iter()
            .flat_map(|t| t.values())
            .filter_map(Val::as_sym)
            .filter(|id| known.insert(*id))
            .collect();
        let dict = ConstCatalog::global().export(fresh);
        self.stats.dict_entries_sent += dict.len() as u64;
        let payload = crate::messages::AnswerRows {
            vars: vars.to_vec(),
            rows,
            null_depths,
            dict,
            // With durability on, the answerer's current watermarks ride
            // along so durable receivers can log a resync cursor (see
            // `peer::durability`). Without it nobody would log them, so the
            // map (and its wire bytes) stays empty — keeping the default
            // configuration's byte accounting identical to the delta-wave
            // baselines.
            marks: if self.config.durability {
                self.db.watermarks()
            } else {
                BTreeMap::new()
            },
        };
        // Data-plane byte accounting (experiment e16 only — each side of
        // the comparison re-encodes the payload, so it is opt-in): what
        // this payload costs on the wire, and what it would have cost
        // pre-interning (strings inline, no dictionary).
        if self.config.measure_payload_bytes {
            self.stats.payload_bytes += payload.wire_size() as u64;
            self.stats.payload_bytes_legacy += payload.wire_size_legacy() as u64;
        }
        payload
    }

    /// Records null depths arriving with an answer.
    pub(crate) fn absorb_null_depths(&mut self, rows: &crate::messages::AnswerRows) {
        for (id, depth) in &rows.null_depths {
            self.chase.record(*id, *depth);
        }
    }

    /// Folds an answer's dictionary delta into the shared catalog view and
    /// records that `from` knows those symbols (no need to ship their
    /// definitions back). In one process the absorb is an identity check;
    /// a cross-process deployment would remap here.
    pub(crate) fn absorb_dict(&mut self, from: NodeId, rows: &crate::messages::AnswerRows) {
        if rows.dict.is_empty() {
            return;
        }
        let remap = ConstCatalog::global().absorb(&rows.dict);
        debug_assert!(
            remap.is_identity(),
            "in-process dictionary deltas must agree with the shared catalog"
        );
        let known = self.sym_sent.entry(from).or_default();
        known.extend(rows.dict.iter().map(|(id, _)| remap.map(*id)));
    }

    /// Sends a Dijkstra–Scholten *basic* message (eager mode): counts the
    /// deficit and wakes the root-quiet flag.
    pub(crate) fn send_basic(
        &mut self,
        ctx: &mut Context<ProtocolMsg>,
        to: NodeId,
        msg: ProtocolMsg,
    ) {
        debug_assert!(msg.is_basic(), "send_basic used for a control message");
        self.ds.on_send();
        self.sup.root_quiet = false;
        ctx.send(to, msg);
    }

    /// Post-event hook: runs Dijkstra–Scholten disengagement and, at the
    /// root, the fix-point broadcast.
    fn after_event(&mut self, ctx: &mut Context<ProtocolMsg>) {
        if self.config.mode != UpdateMode::Eager {
            return;
        }
        match self.ds.try_disengage() {
            Disengage::None => {}
            Disengage::AckParent(parent) => ctx.send(parent, ProtocolMsg::Ack),
            Disengage::RootTerminated => {
                if self.is_super && self.upd.active && !self.sup.root_quiet {
                    self.sup.root_quiet = true;
                    self.broadcast_fixpoint(ctx);
                }
            }
        }
    }
}

impl Peer<ProtocolMsg> for DbPeer {
    fn on_envelope(
        &mut self,
        from: NodeId,
        msg_id: u64,
        msg: ProtocolMsg,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        // Exactly-once: fault-injected duplicates carry the same msg_id.
        if !self.seen_msgs.insert((from, msg_id)) {
            return;
        }
        self.on_message(from, msg, ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: ProtocolMsg, ctx: &mut Context<ProtocolMsg>) {
        ctx.charge(self.config.cost_per_message);

        // Dijkstra–Scholten transport layer (eager mode only).
        if self.config.mode == UpdateMode::Eager {
            if let ProtocolMsg::Ack = msg {
                self.ds.on_ack();
                self.after_event(ctx);
                return;
            }
        }
        let ack = if self.config.mode == UpdateMode::Eager && msg.is_basic() {
            // First contact with a newer epoch retires leftover
            // Dijkstra–Scholten state: a churn-stranded epoch can leave a
            // permanent deficit (acks addressed to a crashed peer were
            // dropped), which would wedge termination detection of every
            // later epoch. Re-drives start from quiescence, so nothing of
            // the old epoch is in flight and the reset is safe.
            if let Some(epoch) = msg.session_epoch() {
                if self.upd.active && epoch > self.upd.epoch {
                    self.ds.reset();
                }
            }
            Some(self.ds.on_receive(from))
        } else {
            None
        };

        match msg {
            // Driver commands (super-peer).
            ProtocolMsg::StartDiscovery => self.start_discovery(ctx),
            ProtocolMsg::StartUpdate { epoch } => self.start_update(epoch, ctx),
            ProtocolMsg::StartScopedUpdate { epoch } => self.start_scoped_update(epoch, ctx),
            ProtocolMsg::ApplyChange { change } => self.apply_change(change, ctx),
            ProtocolMsg::CollectStats => self.on_collect_stats(from, ctx),
            ProtocolMsg::ResetStats => self.on_reset_stats(from, ctx),
            ProtocolMsg::BroadcastRules { rules } => self.on_broadcast_rules(from, rules, ctx),
            ProtocolMsg::StatsReport { stats } => self.on_stats_report(from, stats),

            // Discovery.
            ProtocolMsg::RequestNodes { owner } => self.on_request_nodes(from, owner, ctx),
            ProtocolMsg::DiscoveryAnswer {
                owner,
                edges,
                closed,
                finished,
            } => self.on_discovery_answer(from, owner, edges, closed, finished, ctx),
            ProtocolMsg::DiscoveryClosed => self.on_discovery_closed(),

            // Eager update.
            ProtocolMsg::UpdateFlood { epoch } => self.on_update_flood(from, epoch, ctx),
            ProtocolMsg::Query {
                epoch,
                rule,
                part,
                sn,
            } => self.on_query(from, epoch, rule, part, sn, ctx),
            ProtocolMsg::Answer {
                epoch,
                rule,
                rows,
                complete,
                reopen,
            } => self.on_answer(from, epoch, rule, rows, complete, reopen, ctx),
            ProtocolMsg::Unsubscribe { epoch, rule } => self.on_unsubscribe(from, epoch, rule),
            ProtocolMsg::Fixpoint { epoch, generation } => self.on_fixpoint(epoch, generation),
            ProtocolMsg::Ack => { /* handled above */ }

            // Dynamic changes.
            ProtocolMsg::AddRule { rule } => self.on_add_rule(rule, ctx),
            ProtocolMsg::DeleteRule { rule } => self.on_delete_rule(rule, ctx),

            // Rounds mode.
            ProtocolMsg::RoundStart { round } => self.on_round_start(from, round, ctx),
            ProtocolMsg::RoundEcho { round, dirty } => self.on_round_echo(round, dirty, ctx),
            ProtocolMsg::WaveQuery { round, rule, part } => {
                self.on_wave_query(from, round, rule, part, ctx)
            }
            ProtocolMsg::WaveAnswer { round, rule, rows } => {
                self.on_wave_answer(from, round, rule, rows, false, ctx)
            }
            ProtocolMsg::WaveAnswerDelta { round, rule, rows } => {
                self.on_wave_answer(from, round, rule, rows, true, ctx)
            }
            ProtocolMsg::RoundsClosed { rounds } => self.on_rounds_closed(rounds),
            ProtocolMsg::ResumeRounds { round } => self.on_resume_rounds(round, ctx),

            // Durability & churn.
            ProtocolMsg::ResyncRequest { rule, part, since } => {
                self.on_resync_request(from, rule, part, since, ctx)
            }
            ProtocolMsg::ResyncAnswer { rule, rows } => self.on_resync_answer(from, rule, rows),
        }

        if ack == Some(AckDecision::Immediate) {
            ctx.send(from, ProtocolMsg::Ack);
        }
        self.after_event(ctx);
    }

    fn on_crash(&mut self) {
        self.crash_volatile_state();
    }

    fn on_restart(&mut self, ctx: &mut Context<ProtocolMsg>) {
        self.restart_and_resync(ctx);
    }
}
