//! Flat control-plane tables.
//!
//! The session / subscription / dictionary tables used to be nested
//! `BTreeMap`s: fine at ring(8), but at 10k+ peers every delivery paid a
//! pointer-chasing tree walk per lookup and an allocation per node touched.
//! [`VecMap`] is the arena pattern from the columnar data-plane rewrite
//! (PR 4) applied to the control plane: one sorted `Vec<(K, V)>` per table,
//! binary-searched lookups, contiguous iteration, `clear()` that keeps its
//! capacity. The tables these peers hold are small-to-medium and
//! insert-mostly-at-the-end (session epochs grow monotonically), which is
//! exactly where a sorted vec beats a tree.
//!
//! The `BTreeMap` originals are gone from the runtime but survive as the
//! *oracle* in this module's tests: a randomized op sequence is applied to
//! both implementations and every observation must match.

use std::ops::{Bound, RangeBounds};

/// A map over a flat sorted vector. Drop-in for the `BTreeMap` subset the
/// control plane uses: ordered iteration, range scans, entry-or-default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VecMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K, V> Default for VecMap<K, V> {
    fn default() -> Self {
        VecMap {
            entries: Vec::new(),
        }
    }
}

impl<K: Ord + Copy, V> VecMap<K, V> {
    /// Index of `key`, or where it would be inserted.
    fn probe(&self, key: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(key))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Looks a key up.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.probe(key).ok().map(|i| &self.entries[i].1)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.probe(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// True iff the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.probe(key).is_ok()
    }

    /// Inserts, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.probe(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Removes, returning the value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.probe(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// The entry for `key`, default-inserted if absent.
    pub fn or_default(&mut self, key: K) -> &mut V
    where
        V: Default,
    {
        let i = match self.probe(&key) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (key, V::default()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Values in key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Mutable values in key order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.entries.iter_mut().map(|(_, v)| v)
    }

    /// Entries within a key range, in order — two binary searches and a
    /// slice walk (the supersession scans in the session dispatcher live on
    /// this).
    pub fn range<R: RangeBounds<K>>(&self, range: R) -> impl Iterator<Item = (&K, &V)> {
        let lo = match range.start_bound() {
            Bound::Unbounded => 0,
            Bound::Included(k) => self.entries.partition_point(|(ek, _)| ek < k),
            Bound::Excluded(k) => self.entries.partition_point(|(ek, _)| ek <= k),
        };
        let hi = match range.end_bound() {
            Bound::Unbounded => self.entries.len(),
            Bound::Included(k) => self.entries.partition_point(|(ek, _)| ek <= k),
            Bound::Excluded(k) => self.entries.partition_point(|(ek, _)| ek < k),
        };
        self.entries[lo..hi.max(lo)].iter().map(|(k, v)| (k, v))
    }
}

impl<K: Ord + Copy, V> VecMap<K, V> {
    /// Keeps only the entries the predicate approves (order preserved).
    pub fn retain(&mut self, mut f: impl FnMut(&K, &mut V) -> bool) {
        self.entries.retain_mut(|(k, v)| f(k, v));
    }
}

impl<K: Ord + Copy, V> std::ops::Index<&K> for VecMap<K, V> {
    type Output = V;
    fn index(&self, key: &K) -> &V {
        self.get(key).expect("no entry found for key")
    }
}

impl<K: Ord + Copy, V> FromIterator<(K, V)> for VecMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = VecMap::default();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    /// One step of the oracle workload.
    #[derive(Debug, Clone)]
    enum Op {
        Insert(u16, u32),
        Remove(u16),
        OrDefaultBump(u16),
        Clear,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        (0u8..10, any::<u16>(), any::<u32>()).prop_map(|(kind, k, v)| {
            // Keys are drawn from a small space so inserts/removes collide
            // often — the interesting paths.
            let k = k % 64;
            match kind {
                0..=4 => Op::Insert(k, v),
                5..=6 => Op::Remove(k),
                7..=8 => Op::OrDefaultBump(k),
                _ => Op::Clear,
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The retired `BTreeMap` implementation is the oracle: any op
        /// sequence must leave both maps observationally identical —
        /// lookups, ordered iteration, ranges, op return values.
        #[test]
        fn vecmap_matches_btreemap_oracle(ops in proptest::collection::vec(op_strategy(), 0..80)) {
            let mut flat: VecMap<u16, u32> = VecMap::default();
            let mut oracle: BTreeMap<u16, u32> = BTreeMap::new();
            for op in ops {
                match op {
                    Op::Insert(k, v) => {
                        prop_assert_eq!(flat.insert(k, v), oracle.insert(k, v));
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(flat.remove(&k), oracle.remove(&k));
                    }
                    Op::OrDefaultBump(k) => {
                        *flat.or_default(k) += 1;
                        *oracle.entry(k).or_default() += 1;
                    }
                    Op::Clear => {
                        flat.clear();
                        oracle.clear();
                    }
                }
                prop_assert_eq!(flat.len(), oracle.len());
            }
            // Full-state equivalence after the run.
            let flat_all: Vec<(u16, u32)> = flat.iter().map(|(k, v)| (*k, *v)).collect();
            let oracle_all: Vec<(u16, u32)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(flat_all, oracle_all);
            for k in 0u16..64 {
                prop_assert_eq!(flat.get(&k), oracle.get(&k));
                prop_assert_eq!(flat.contains_key(&k), oracle.contains_key(&k));
            }
            // Range scans — the supersession pattern: (Excluded(a), Included(b)).
            for (a, b) in [(0u16, 10u16), (5, 5), (20, 63), (63, 0)] {
                let f: Vec<u16> = flat
                    .range((Bound::Excluded(a), Bound::Included(b)))
                    .map(|(k, _)| *k)
                    .collect();
                let o: Vec<u16> = if a <= b {
                    oracle
                        .range((Bound::Excluded(a), Bound::Included(b)))
                        .map(|(k, _)| *k)
                        .collect()
                } else {
                    Vec::new()
                };
                prop_assert_eq!(f, o);
                let f2: Vec<u16> = if a <= b {
                    flat.range(a..b).map(|(k, _)| *k).collect()
                } else {
                    Vec::new()
                };
                let o2: Vec<u16> = if a <= b {
                    oracle.range(a..b).map(|(k, _)| *k).collect()
                } else {
                    Vec::new()
                };
                prop_assert_eq!(f2, o2);
            }
        }
    }

    #[test]
    fn or_default_inserts_once() {
        let mut m: VecMap<u8, Vec<u8>> = VecMap::default();
        m.or_default(3).push(1);
        m.or_default(3).push(2);
        assert_eq!(m.get(&3), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn keys_stay_sorted() {
        let mut m: VecMap<i32, i32> = VecMap::default();
        for k in [5, 1, 9, 3, 7, 1] {
            m.insert(k, k * 10);
        }
        let keys: Vec<i32> = m.keys().copied().collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
    }
}
