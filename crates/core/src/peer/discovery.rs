//! Topology discovery — the paper's algorithms A1 (`Discover`),
//! A2 (`requestNodes`) and A3 (`processAnswer`).
//!
//! The super-peer starts an exploration on its own behalf (`owner = me`).
//! Requests flood along dependency edges with per-owner deduplication; every
//! participant accumulates the dependency `Edges` of its reachable region
//! and re-answers all registered requesters whenever its knowledge grows —
//! A3's trailing `foreach` loop. Branch `finished` flags echo bottom-up over
//! the per-owner first-request tree (loop-back requests are cut with an
//! immediate `finished = true` answer, exactly A2's `else` branch). When all
//! of the owner's branches are finished it sets `state_d = closed`, computes
//! its maximal dependency paths, and — because the per-rule `closed` cascade
//! of the pseudocode deadlocks on cycles (nodes B and C of the running
//! example each wait for the other) — broadcasts `DiscoveryClosed` so every
//! participant closes and derives its paths from its accumulated edges.
//! This deviation is documented in DESIGN.md §7.

use crate::messages::ProtocolMsg;
use crate::peer::DbPeer;
use p2p_net::Context;
use p2p_topology::paths::DEFAULT_PATH_LIMIT;
use p2p_topology::{maximal_dependency_paths, DependencyGraph, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Per-owner exploration bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct OwnerProgress {
    /// Nodes that requested on behalf of this owner (the paper's `owner`
    /// pairs, π₁ side).
    pub requesters: BTreeSet<NodeId>,
    /// Whether this node already forwarded the owner's request.
    pub explored: bool,
    /// Per-successor branch flags.
    pub branch: BTreeMap<NodeId, BranchFlags>,
    /// Last `(edge count, closed, finished)` sent per requester, to avoid
    /// re-sending identical answers.
    pub last_sent: BTreeMap<NodeId, (usize, bool, bool)>,
}

/// Flags learned from one successor branch.
#[derive(Debug, Clone, Copy, Default)]
pub struct BranchFlags {
    /// The successor reported `state_d == closed`.
    pub closed: bool,
    /// The branch below the successor is exhausted.
    pub finished: bool,
}

/// Discovery-phase state of one peer.
#[derive(Debug, Clone, Default)]
pub struct DiscoveryState {
    /// `state_d == closed`: this node knows its complete reachable topology.
    pub state_closed: bool,
    /// The node has participated in a discovery.
    pub started: bool,
    /// Dependency edges known so far.
    pub edges: BTreeSet<(NodeId, NodeId)>,
    /// Per-owner progress.
    pub owners: BTreeMap<NodeId, OwnerProgress>,
    /// Maximal dependency paths, computed at closure.
    pub paths: Option<Vec<Vec<NodeId>>>,
    /// Path-enumeration failure (budget exceeded on clique-like regions).
    pub path_error: Option<String>,
}

impl DiscoveryState {
    fn branch_finished(&self, owner: NodeId) -> bool {
        self.owners
            .get(&owner)
            .map(|op| op.explored && op.branch.values().all(|b| b.finished))
            .unwrap_or(false)
    }
}

impl DbPeer {
    /// A1 — `Discover`: run by the super-peer (or any initiator).
    pub(crate) fn start_discovery(&mut self, ctx: &mut Context<ProtocolMsg>) {
        self.disc.started = true;
        self.disc.edges.extend(self.own_edges());
        if self.rules.is_empty() {
            // `if |Rules| == 0: state_d = closed; Paths = ∅`
            self.disc.state_closed = true;
            self.disc.paths = Some(Vec::new());
            self.broadcast_discovery_closed(ctx);
            return;
        }
        let me = self.id;
        let op = self.disc.owners.entry(me).or_default();
        op.explored = true;
        let succs = self.successors();
        for s in &succs {
            self.disc
                .owners
                .get_mut(&me)
                .expect("just inserted")
                .branch
                .entry(*s)
                .or_default();
        }
        for s in succs {
            self.stats.queries_sent += 1;
            ctx.send(s, ProtocolMsg::RequestNodes { owner: me });
        }
    }

    /// A2 — `requestNodes(IDs, IDo)`.
    pub(crate) fn on_request_nodes(
        &mut self,
        from: NodeId,
        owner: NodeId,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.stats.discovery_requests += 1;
        self.disc.started = true;
        self.disc.edges.extend(self.own_edges());
        self.add_pipe(from);

        if self.rules.is_empty() {
            // Sink: `state_d = closed; finished = true`.
            self.disc.state_closed = true;
            if self.disc.paths.is_none() {
                self.disc.paths = Some(Vec::new());
            }
            let op = self.disc.owners.entry(owner).or_default();
            op.requesters.insert(from);
            self.stats.discovery_answers += 1;
            ctx.send(
                from,
                ProtocolMsg::DiscoveryAnswer {
                    owner,
                    edges: self.disc.edges.clone(),
                    closed: true,
                    finished: true,
                },
            );
            return;
        }

        let already_explored = self
            .disc
            .owners
            .get(&owner)
            .map(|op| op.explored)
            .unwrap_or(false);
        let op = self.disc.owners.entry(owner).or_default();
        op.requesters.insert(from);

        if !already_explored {
            // First request on behalf of this owner: forward to all
            // successors (`foreach r ∈ Rules: requestNodes_id(r)(ID, IDo)`).
            op.explored = true;
            let succs = self.successors();
            for s in &succs {
                self.disc
                    .owners
                    .get_mut(&owner)
                    .expect("present")
                    .branch
                    .entry(*s)
                    .or_default();
            }
            for s in succs {
                self.stats.queries_sent += 1;
                ctx.send(s, ProtocolMsg::RequestNodes { owner });
            }
            // Immediate answer with current knowledge (finished = false).
            self.answer_requester(from, owner, false, ctx);
        } else {
            // Loop-back: the owner's exploration already traversed this node
            // (`else finished = true` in A2): cut the branch.
            self.answer_requester(from, owner, true, ctx);
        }
    }

    /// A3 — `processAnswer(IDo, set, state, status)`.
    pub(crate) fn on_discovery_answer(
        &mut self,
        from: NodeId,
        owner: NodeId,
        edges: BTreeSet<(NodeId, NodeId)>,
        closed: bool,
        finished: bool,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        let before = self.disc.edges.len();
        self.disc.edges.extend(edges);
        let grew = self.disc.edges.len() > before;

        if let Some(op) = self.disc.owners.get_mut(&owner) {
            if let Some(branch) = op.branch.get_mut(&from) {
                branch.closed |= closed;
                branch.finished |= finished;
            }
        }

        // Owner closure: `if ID == IDo ∧ ∀Rules finished: state_d = closed`.
        if owner == self.id && !self.disc.state_closed && self.disc.branch_finished(owner) {
            self.close_discovery();
            self.broadcast_discovery_closed(ctx);
        } else if grew && self.disc.state_closed {
            // A late edge re-answer can legitimately arrive after the
            // owner's `DiscoveryClosed` broadcast (the broadcast travels a
            // different link): fold it in and recompute the paths, so that
            // the state at quiescence always reflects the complete edge set.
            self.close_discovery();
        }

        // A3's trailing loop: re-answer every registered requester whose
        // view would change.
        self.flush_discovery_answers(ctx);
    }

    /// Final broadcast: everyone closes and computes paths.
    pub(crate) fn on_discovery_closed(&mut self) {
        if !self.disc.state_closed {
            self.close_discovery();
        }
    }

    fn close_discovery(&mut self) {
        self.disc.state_closed = true;
        let mut graph = DependencyGraph::new();
        graph.add_node(self.id);
        for (f, t) in &self.disc.edges {
            graph.add_edge(*f, *t);
        }
        match maximal_dependency_paths(&graph, self.id, DEFAULT_PATH_LIMIT) {
            Ok(paths) => self.disc.paths = Some(paths),
            Err(e) => {
                // Factorial blow-up (cliques): record, keep edges usable.
                self.disc.path_error = Some(e.to_string());
                self.disc.paths = Some(Vec::new());
            }
        }
    }

    fn broadcast_discovery_closed(&mut self, ctx: &mut Context<ProtocolMsg>) {
        // The owner knows every participant: they all appear in its edges.
        let mut targets: BTreeSet<NodeId> = BTreeSet::new();
        for (f, t) in &self.disc.edges {
            targets.insert(*f);
            targets.insert(*t);
        }
        targets.remove(&self.id);
        ctx.send_to_many(targets, ProtocolMsg::DiscoveryClosed);
    }

    fn answer_requester(
        &mut self,
        to: NodeId,
        owner: NodeId,
        force_finished: bool,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        let finished = force_finished || self.disc.branch_finished(owner);
        let closed = self.disc.state_closed;
        let payload = (self.disc.edges.len(), closed, finished);
        if let Some(op) = self.disc.owners.get_mut(&owner) {
            if op.last_sent.get(&to) == Some(&payload) {
                return;
            }
            op.last_sent.insert(to, payload);
        }
        self.stats.discovery_answers += 1;
        ctx.send(
            to,
            ProtocolMsg::DiscoveryAnswer {
                owner,
                edges: self.disc.edges.clone(),
                closed,
                finished,
            },
        );
    }

    fn flush_discovery_answers(&mut self, ctx: &mut Context<ProtocolMsg>) {
        let pending: Vec<(NodeId, NodeId)> = self
            .disc
            .owners
            .iter()
            .flat_map(|(owner, op)| op.requesters.iter().map(|r| (*r, *owner)))
            .collect();
        for (requester, owner) in pending {
            // Loop-back requesters were answered `finished = true` once; a
            // repeat answer must not downgrade that flag, so recompute with
            // the sticky last-sent flag.
            let sticky_finished = self
                .disc
                .owners
                .get(&owner)
                .and_then(|op| op.last_sent.get(&requester))
                .map(|(_, _, f)| *f)
                .unwrap_or(false);
            self.answer_requester(requester, owner, sticky_finished, ctx);
        }
    }
}
