//! The synchronous rounds update — the paper's "synchronous alternative"
//! (Section 1: the asynchronous model "may be faster at expense of an
//! increase of the number of messages"; this mode is the other end of that
//! trade-off).
//!
//! One round = a propagation-of-information-with-feedback (echo) wave:
//!
//! 1. the super-peer floods `RoundStart` along pipes, building a spanning
//!    tree (first-contact parent);
//! 2. every node issues `WaveQuery` for each of its rule fragments;
//! 3. acyclic nodes *defer* their `WaveAnswer`s until their own fragments
//!    have answered (so one wave carries data all the way up a DAG — this is
//!    what keeps tree/layered execution time linear in depth); nodes on
//!    dependency cycles answer immediately with current data (cutting the
//!    wait cycles that would otherwise deadlock);
//! 4. each node echoes to its flood parent once its fragments have answered
//!    and all its flood children have echoed, aggregating a `dirty` bit
//!    ("did anything get inserted in this subtree?");
//! 5. the root starts round *k+1* iff round *k* was dirty, else broadcasts
//!    `RoundsClosed` — the paper's fix-point, reached when a full wave
//!    produced no new data anywhere (exactly the condition its
//!    maximal-dependency-path flags certify).

use crate::messages::ProtocolMsg;
use crate::peer::DbPeer;
use crate::rule::{BodyPart, RuleId};
use crate::stats::ClosedBy;
use p2p_net::Context;
use p2p_relational::Tuple;
use p2p_topology::NodeId;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A shipped fragment extension: variable names plus rows over them.
pub type WaveRows = (Vec<Arc<str>>, Vec<Tuple>);

/// Rounds-mode state of one peer.
#[derive(Debug, Clone, Default)]
pub struct RoundsState {
    /// A rounds session is active.
    pub active: bool,
    /// Current round (1-based).
    pub round: u32,
    /// The round's flood reached this node.
    pub flood_seen: bool,
    /// Flood parent (None at the root).
    pub flood_parent: Option<NodeId>,
    /// Echoes still expected from pipe neighbours.
    pub pending_echoes: usize,
    /// Aggregated dirtiness of children subtrees.
    pub child_dirty: bool,
    /// Wave answers still expected for own fragments.
    pub pending_answers: usize,
    /// Facts were inserted at this node this round.
    pub dirty_self: bool,
    /// Echo already sent this round.
    pub echoed: bool,
    /// Queries deferred until own fragments answered.
    pub deferred: Vec<(NodeId, RuleId, BodyPart)>,
    /// Fragment extensions received this round: `(vars, rows)` per
    /// `(rule, body node)`.
    pub wave_parts: BTreeMap<(RuleId, NodeId), WaveRows>,
    /// Fix-point reached.
    pub closed: bool,
    /// Total rounds executed (set at closure; at the root, running count).
    pub rounds_done: u32,
}

impl RoundsState {
    fn waves_done(&self) -> bool {
        self.pending_answers == 0
    }
}

impl DbPeer {
    /// Root: begin rounds-mode session.
    pub(crate) fn start_rounds(&mut self, ctx: &mut Context<ProtocolMsg>) {
        self.rnd = RoundsState {
            active: true,
            ..Default::default()
        };
        self.start_round(1, ctx);
    }

    fn start_round(&mut self, round: u32, ctx: &mut Context<ProtocolMsg>) {
        self.enter_round(round, ctx);
        self.rnd.flood_seen = true;
        self.rnd.flood_parent = None;
        self.rnd.rounds_done = round;
        // Pipes plus the full roster: components not pipe-connected to the
        // root must still participate in the wave (same rationale as the
        // eager flood's direct-coverage backstop).
        let mut targets: std::collections::BTreeSet<NodeId> = self.pipes.clone();
        targets.extend(self.sup.all_nodes.iter().copied());
        targets.remove(&self.id);
        self.rnd.pending_echoes = targets.len();
        for p in targets {
            ctx.send(p, ProtocolMsg::RoundStart { round });
        }
        self.maybe_echo(ctx);
    }

    /// Resets per-round state and issues this node's wave queries. Called on
    /// first contact with a round (flood or query, whichever arrives first).
    fn enter_round(&mut self, round: u32, ctx: &mut Context<ProtocolMsg>) {
        if self.rnd.active && self.rnd.round >= round {
            return;
        }
        self.stats.rounds += 1;
        self.rnd = RoundsState {
            active: true,
            round,
            closed: false,
            ..Default::default()
        };
        let rules: Vec<_> = self.rules.values().cloned().collect();
        let mut expected = 0usize;
        for rule in &rules {
            for part in &rule.parts {
                expected += 1;
                self.stats.queries_sent += 1;
                ctx.send(
                    part.node,
                    ProtocolMsg::WaveQuery {
                        round,
                        rule: rule.id,
                        part: part.clone(),
                    },
                );
            }
        }
        self.rnd.pending_answers = expected;
    }

    /// Flood handler.
    pub(crate) fn on_round_start(
        &mut self,
        from: NodeId,
        round: u32,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.add_pipe(from);
        self.enter_round(round, ctx);
        if round < self.rnd.round {
            // Stale flood from a previous round: answer so the (obsolete)
            // counter drains; the sender ignores stale echoes.
            ctx.send(
                from,
                ProtocolMsg::RoundEcho {
                    round,
                    dirty: false,
                },
            );
            return;
        }
        if !self.rnd.flood_seen {
            self.rnd.flood_seen = true;
            self.rnd.flood_parent = Some(from);
            let targets: Vec<NodeId> = self.pipes.iter().copied().filter(|p| *p != from).collect();
            self.rnd.pending_echoes = targets.len();
            for p in targets {
                ctx.send(p, ProtocolMsg::RoundStart { round });
            }
            self.maybe_echo(ctx);
        } else {
            // Duplicate contact: immediate non-child echo.
            ctx.send(
                from,
                ProtocolMsg::RoundEcho {
                    round,
                    dirty: false,
                },
            );
        }
    }

    /// Wave query handler.
    pub(crate) fn on_wave_query(
        &mut self,
        from: NodeId,
        round: u32,
        rule: RuleId,
        part: BodyPart,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.stats.queries_received += 1;
        self.add_pipe(from);
        self.enter_round(round, ctx);
        if round < self.rnd.round {
            // Stale: answer with current data so the old round can't wedge.
            self.answer_wave(from, round, rule, &part, ctx);
            return;
        }
        let defer = !self.in_cycle && !self.rnd.waves_done();
        if defer {
            self.rnd.deferred.push((from, rule, part));
        } else {
            self.answer_wave(from, round, rule, &part, ctx);
        }
    }

    fn answer_wave(
        &mut self,
        to: NodeId,
        round: u32,
        rule: RuleId,
        part: &BodyPart,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        let rows = self.eval_part_local(part, ctx);
        self.stats.answers_sent += 1;
        self.stats.rows_shipped += rows.len() as u64;
        let payload = self.make_answer_rows(&part.vars, rows);
        ctx.send(
            to,
            ProtocolMsg::WaveAnswer {
                round,
                rule,
                rows: payload,
            },
        );
    }

    /// Wave answer handler.
    pub(crate) fn on_wave_answer(
        &mut self,
        from: NodeId,
        round: u32,
        rule: RuleId,
        rows: crate::messages::AnswerRows,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.stats.answers_received += 1;
        if !self.rnd.active || round != self.rnd.round {
            return; // Stale answer for a finished round.
        }
        self.absorb_null_depths(&rows);
        self.rnd
            .wave_parts
            .insert((rule, from), (rows.vars.clone(), rows.rows));
        self.rnd.pending_answers = self.rnd.pending_answers.saturating_sub(1);

        // Recompute the rule if all its fragments arrived this round.
        let complete_parts: Option<Vec<crate::joins::VarRows>> = self
            .rules
            .get(&rule)
            .map(|r| r.parts.clone())
            .map(|parts| {
                parts
                    .iter()
                    .map(|p| {
                        self.rnd
                            .wave_parts
                            .get(&(rule, p.node))
                            .map(|(vars, rows)| crate::joins::VarRows {
                                vars: vars.clone(),
                                rows: rows.clone(),
                            })
                    })
                    .collect::<Option<Vec<_>>>()
            })
            .unwrap_or(None);
        if let Some(parts) = complete_parts {
            let inserted = self.apply_rule(rule, parts);
            if inserted > 0 {
                self.rnd.dirty_self = true;
            }
        }

        if self.rnd.waves_done() {
            // Serve the queries we held back.
            let deferred = std::mem::take(&mut self.rnd.deferred);
            let r = self.rnd.round;
            for (to, d_rule, d_part) in deferred {
                self.answer_wave(to, r, d_rule, &d_part, ctx);
            }
            self.maybe_echo(ctx);
        }
    }

    /// Echo handler.
    pub(crate) fn on_round_echo(
        &mut self,
        round: u32,
        dirty: bool,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        if !self.rnd.active || round != self.rnd.round {
            return;
        }
        self.rnd.pending_echoes = self.rnd.pending_echoes.saturating_sub(1);
        self.rnd.child_dirty |= dirty;
        self.maybe_echo(ctx);
    }

    fn maybe_echo(&mut self, ctx: &mut Context<ProtocolMsg>) {
        if !self.rnd.flood_seen
            || self.rnd.echoed
            || !self.rnd.waves_done()
            || self.rnd.pending_echoes > 0
        {
            return;
        }
        self.rnd.echoed = true;
        let dirty = self.rnd.dirty_self || self.rnd.child_dirty;
        match self.rnd.flood_parent {
            Some(parent) => {
                ctx.send(
                    parent,
                    ProtocolMsg::RoundEcho {
                        round: self.rnd.round,
                        dirty,
                    },
                );
            }
            None => {
                // Root: the round is complete.
                if dirty {
                    let next = self.rnd.round + 1;
                    self.start_round(next, ctx);
                } else {
                    let rounds = self.rnd.round;
                    self.rnd.closed = true;
                    self.rnd.rounds_done = rounds;
                    self.stats.closed_by = ClosedBy::CleanRound;
                    for n in self.sup.all_nodes.clone() {
                        if n != self.id {
                            ctx.send(n, ProtocolMsg::RoundsClosed { rounds });
                        }
                    }
                }
            }
        }
    }

    /// Fix-point broadcast (rounds mode).
    pub(crate) fn on_rounds_closed(&mut self, rounds: u32) {
        if !self.rnd.active && !self.rules.is_empty() {
            // Disconnected component with rules: genuinely not updated.
            return;
        }
        self.rnd.closed = true;
        self.rnd.active = true;
        self.rnd.rounds_done = rounds;
        self.stats.closed_by = ClosedBy::CleanRound;
    }
}
