//! The synchronous rounds update — the paper's "synchronous alternative"
//! (Section 1: the asynchronous model "may be faster at expense of an
//! increase of the number of messages"; this mode is the other end of that
//! trade-off).
//!
//! One round = a propagation-of-information-with-feedback (echo) wave:
//!
//! 1. the session root floods `RoundStart` along pipes, building a spanning
//!    tree (first-contact parent);
//! 2. every node issues `WaveQuery` for each of its rule fragments;
//! 3. acyclic nodes *defer* their `WaveAnswer`s until their own fragments
//!    have answered (so one wave carries data all the way up a DAG — this is
//!    what keeps tree/layered execution time linear in depth); nodes on
//!    dependency cycles answer immediately with current data (cutting the
//!    wait cycles that would otherwise deadlock);
//! 4. each node echoes to its flood parent once its fragments have answered
//!    and all its flood children have echoed, aggregating a `dirty` bit
//!    ("did anything get inserted in this subtree?");
//! 5. the root starts round *k+1* iff round *k* was dirty, else broadcasts
//!    `RoundsClosed` — the paper's fix-point, reached when a full wave
//!    produced no new data anywhere (exactly the condition its
//!    maximal-dependency-path flags certify).
//!
//! All of this is **per session**: [`RoundsState`] lives inside
//! [`crate::peer::SessionState`], so several rounds-mode sessions — one per
//! initiating root — run interleaved, each with its own round counter, echo
//! tree, wave bookkeeping and delta machinery over the shared database.
//! `RoundsClosed` retires the session's entry; the table is empty again
//! once every session certified its fix-point.
//!
//! ## Delta-driven wave answers (`SystemConfig::delta_waves`, default on)
//!
//! The paper's fix-point re-evaluates every rule body each round; shipped
//! naively, the extension of every fragment crosses the wire *every* round,
//! so bytes grow quadratically with rounds on cyclic topologies. With
//! `delta_waves` enabled the protocol is **semi-naive** instead:
//!
//! * **Answer side** — a peer keeps, per session and per
//!   `(requester, rule)` subscription, the database watermarks
//!   ([`p2p_relational::Database::watermarks`]) as of its last answer *in
//!   that session*. Watermarks are session-scoped on purpose: two
//!   interleaved sessions ship independent delta streams to the same
//!   requester, and each stream's cursor must only advance with its own
//!   answers — a shared cursor would silently swallow rows from the other
//!   session's stream. The first answer of a session ships the full
//!   extension (`WaveAnswer`); every later one delta-evaluates the fragment
//!   over [`p2p_relational::Database::facts_since`] — only bindings using at
//!   least one fact inserted since the session's watermark — and ships just
//!   those rows as a [`crate::messages::ProtocolMsg::WaveAnswerDelta`].
//! * **Head side** — the head node caches each fragment's accumulated
//!   extension across rounds ([`RoundsState::wave_cache`], again per
//!   session) and merges incoming deltas into it. When all fragments of a
//!   rule have answered in a round, it applies the standard semi-naive
//!   expansion ([`crate::joins::join_parts_seminaive`]): each fragment's
//!   *delta* joined against the other fragments' cached *fulls*, union over
//!   the fragments — every binding using a new row is derived exactly once,
//!   bindings entirely over old rows were derived in an earlier round.
//!
//! Termination, the dirty-bit accounting and the echo tree are unchanged;
//! only the payloads shrink. With `delta_waves` off, every answer re-ships
//! the full current extension — the paper-faithful baseline the delta mode
//! is checked against (tuple-identical final databases).

use crate::joins::{join_parts_seminaive, PartDelta, VarRows};
use crate::messages::ProtocolMsg;
use crate::peer::{DbPeer, SessionState};
use crate::rule::{BodyPart, RuleId};
use crate::stats::ClosedBy;
use p2p_net::{Context, SessionId};
use p2p_relational::Tuple;
use p2p_topology::NodeId;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// A shipped fragment extension: variable names plus rows over them.
pub type WaveRows = (Vec<Arc<str>>, Vec<Tuple>);

/// Answer-side delta subscription: what this peer remembers about the last
/// wave answer it shipped to one `(requester, rule)` within one session.
#[derive(Debug, Clone, Default)]
pub struct WaveSub {
    /// Per-relation insertion watermarks at the time of the last answer.
    pub watermarks: BTreeMap<Arc<str>, usize>,
    /// Cumulative rows shipped on this subscription (what a full re-ship
    /// would have re-sent; feeds the `rows_saved` statistic).
    pub rows_sent: u64,
}

/// Head-side per-fragment cache: the extension accumulated across rounds.
#[derive(Debug, Clone, Default)]
pub struct PartCache {
    /// Column variables (fixed by the fragment).
    pub vars: Vec<Arc<str>>,
    /// Accumulated rows, in arrival order. Kept alongside `set` because the
    /// semi-naive join stages from here: iterating the `HashSet` instead
    /// would leak nondeterministic order into join output, insertion order
    /// and shipped rows — every observable order in this crate is
    /// deterministic by design.
    pub rows: Vec<Tuple>,
    /// Fast membership for `rows`.
    pub set: HashSet<Tuple>,
}

impl PartCache {
    /// Merges shipped rows into the cache, returning only the genuinely
    /// new ones (in arrival order). Sets the column variables on first
    /// contact. Keeps `rows` and `set` in lockstep — the invariant the
    /// semi-naive join's determinism rests on — so every merge site
    /// (wave answers, resync answers, recovery priming) goes through here.
    pub fn merge(&mut self, vars: &[Arc<str>], rows: Vec<Tuple>) -> Vec<Tuple> {
        if self.vars.is_empty() {
            self.vars = vars.to_vec();
        }
        let mut fresh = Vec::new();
        for t in rows {
            if self.set.insert(t.clone()) {
                self.rows.push(t.clone());
                fresh.push(t);
            }
        }
        fresh
    }
}

/// Rounds-mode state of one update session at one peer.
#[derive(Debug, Clone, Default)]
pub struct RoundsState {
    /// The session's rounds protocol is active here.
    pub active: bool,
    /// Current round (1-based).
    pub round: u32,
    /// The round's flood reached this node.
    pub flood_seen: bool,
    /// Flood parent (None at the root).
    pub flood_parent: Option<NodeId>,
    /// Echoes still expected from pipe neighbours.
    pub pending_echoes: usize,
    /// Aggregated dirtiness of children subtrees.
    pub child_dirty: bool,
    /// Wave answers still expected for own fragments.
    pub pending_answers: usize,
    /// Facts were inserted at this node this round.
    pub dirty_self: bool,
    /// Echo already sent this round.
    pub echoed: bool,
    /// Queries deferred until own fragments answered.
    pub deferred: Vec<(NodeId, RuleId, BodyPart)>,
    /// Fragment extensions received this round, per `(rule, body node)`:
    /// with `delta_waves` the rows *new to the cache* this round, otherwise
    /// the full shipped extension.
    pub wave_parts: BTreeMap<(RuleId, NodeId), WaveRows>,
    /// Answer-side delta subscriptions, per `(requester, rule)`. Survives
    /// round resets (a session-lifetime map; retired with the session).
    pub wave_subs: BTreeMap<(NodeId, RuleId), WaveSub>,
    /// Head-side fragment caches, per `(rule, body node)`. Survives round
    /// resets (a session-lifetime map; retired with the session).
    pub wave_cache: BTreeMap<(RuleId, NodeId), PartCache>,
    /// Fix-point reached.
    pub closed: bool,
    /// Total rounds executed (set at closure; at the root, running count).
    pub rounds_done: u32,
}

impl RoundsState {
    fn waves_done(&self) -> bool {
        self.pending_answers == 0
    }
}

impl DbPeer {
    /// Root: begin a rounds-mode session.
    pub(crate) fn start_rounds(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        st.rnd = RoundsState {
            active: true,
            ..Default::default()
        };
        st.retired = false;
        self.note_session_joined();
        self.start_round(st, sid, 1, ctx);
    }

    pub(crate) fn start_round(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        round: u32,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.enter_round(st, sid, round, ctx);
        st.rnd.flood_seen = true;
        st.rnd.flood_parent = None;
        st.rnd.rounds_done = round;
        // Pipes plus the full roster: components not pipe-connected to the
        // root must still participate in the wave (same rationale as the
        // eager flood's direct-coverage backstop).
        let mut targets: std::collections::BTreeSet<NodeId> = self.pipes.clone();
        targets.extend(self.sup.all_nodes.iter().copied());
        targets.remove(&self.id);
        st.rnd.pending_echoes = targets.len();
        ctx.send_to_many(
            targets,
            ProtocolMsg::RoundStart {
                session: sid,
                round,
            },
        );
        self.maybe_echo(st, sid, ctx);
    }

    /// Resets per-round state and issues this node's wave queries. Called on
    /// first contact with a round (flood or query, whichever arrives first).
    /// The session-scoped delta-wave maps (`wave_subs`, `wave_cache`) carry
    /// over across rounds.
    fn enter_round(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        round: u32,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        if st.rnd.active && st.rnd.round >= round {
            return;
        }
        if !st.rnd.active {
            self.note_session_joined();
            st.retired = false;
        }
        self.stats.rounds += 1;
        let wave_subs = std::mem::take(&mut st.rnd.wave_subs);
        let wave_cache = std::mem::take(&mut st.rnd.wave_cache);
        st.rnd = RoundsState {
            active: true,
            round,
            closed: false,
            wave_subs,
            wave_cache,
            ..Default::default()
        };
        let rules: Vec<_> = self.rules.values().cloned().collect();
        let mut expected = 0usize;
        for rule in &rules {
            for part in &rule.parts {
                expected += 1;
                self.stats.queries_sent += 1;
                ctx.send(
                    part.node,
                    ProtocolMsg::WaveQuery {
                        session: sid,
                        round,
                        rule: rule.id,
                        part: part.clone(),
                    },
                );
            }
        }
        st.rnd.pending_answers = expected;
        // Crash recovery: give any still-unanswered resync request another
        // chance with the new round (at-least-once; see `durability`).
        self.resend_pending_resyncs(ctx);
    }

    /// Flood handler.
    pub(crate) fn on_round_start(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        from: NodeId,
        round: u32,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.add_pipe(from);
        self.enter_round(st, sid, round, ctx);
        if round < st.rnd.round {
            // Stale flood from a previous round: answer so the (obsolete)
            // counter drains; the sender ignores stale echoes.
            ctx.send(
                from,
                ProtocolMsg::RoundEcho {
                    session: sid,
                    round,
                    dirty: false,
                },
            );
            return;
        }
        if !st.rnd.flood_seen {
            st.rnd.flood_seen = true;
            st.rnd.flood_parent = Some(from);
            let targets: Vec<NodeId> = self.pipes.iter().copied().filter(|p| *p != from).collect();
            st.rnd.pending_echoes = targets.len();
            ctx.send_to_many(
                targets,
                ProtocolMsg::RoundStart {
                    session: sid,
                    round,
                },
            );
            self.maybe_echo(st, sid, ctx);
        } else {
            // Duplicate contact: immediate non-child echo.
            ctx.send(
                from,
                ProtocolMsg::RoundEcho {
                    session: sid,
                    round,
                    dirty: false,
                },
            );
        }
    }

    /// Wave query handler.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_wave_query(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        from: NodeId,
        round: u32,
        rule: RuleId,
        part: BodyPart,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.stats.queries_received += 1;
        self.add_pipe(from);
        self.enter_round(st, sid, round, ctx);
        if round < st.rnd.round {
            // Stale: the requester has moved past this round and
            // `on_wave_answer` will drop the payload unread, so shipping the
            // full current extension would be pure waste (and would
            // misattribute the bytes as useful traffic). Send an empty
            // acknowledgement — enough to drain the old round's counter if
            // anyone is still waiting — accounted separately.
            self.stats.stale_answers_sent += 1;
            let payload = crate::messages::AnswerRows {
                vars: part.vars.clone(),
                rows: Vec::new(),
                null_depths: Vec::new(),
                // No watermarks: a stale ack is not a processed answer and
                // must not advance anyone's resync cursor.
                marks: BTreeMap::new(),
                dict: Vec::new(),
            };
            ctx.send(
                from,
                ProtocolMsg::WaveAnswer {
                    session: sid,
                    round,
                    rule,
                    rows: payload,
                },
            );
            return;
        }
        let defer = !self.in_cycle && !st.rnd.waves_done();
        if defer {
            st.rnd.deferred.push((from, rule, part));
        } else {
            self.answer_wave(st, sid, from, round, rule, &part, ctx);
        }
    }

    /// Ships one wave answer: a full extension on first contact (or with
    /// `delta_waves` off), a semi-naive delta afterwards.
    #[allow(clippy::too_many_arguments)]
    fn answer_wave(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        to: NodeId,
        round: u32,
        rule: RuleId,
        part: &BodyPart,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        let key = (to, rule);
        if self.config.delta_waves && st.rnd.wave_subs.contains_key(&key) {
            // Re-answer: only rows derived from facts inserted since the
            // last answer to this requester within this session.
            let prev_sent = st.rnd.wave_subs[&key].rows_sent;
            let watermarks = st.rnd.wave_subs[&key].watermarks.clone();
            let rows = self.eval_part_delta_local(rule, part, &watermarks, ctx);
            let shipped = rows.len() as u64;
            self.stats.answers_sent += 1;
            self.stats.delta_answers_sent += 1;
            self.stats.rows_shipped += shipped;
            self.stats.rows_saved += prev_sent;
            let payload = self.make_answer_rows(to, &part.vars, rows);
            let marks = self.db.watermarks();
            if let Some(sub) = st.rnd.wave_subs.get_mut(&key) {
                sub.watermarks = marks;
                sub.rows_sent += shipped;
            }
            ctx.send(
                to,
                ProtocolMsg::WaveAnswerDelta {
                    session: sid,
                    round,
                    rule,
                    rows: payload,
                },
            );
            return;
        }
        let rows = self.eval_part_local(rule, part, ctx);
        self.stats.answers_sent += 1;
        self.stats.rows_shipped += rows.len() as u64;
        if self.config.delta_waves {
            st.rnd.wave_subs.insert(
                key,
                WaveSub {
                    watermarks: self.db.watermarks(),
                    rows_sent: rows.len() as u64,
                },
            );
        }
        let payload = self.make_answer_rows(to, &part.vars, rows);
        ctx.send(
            to,
            ProtocolMsg::WaveAnswer {
                session: sid,
                round,
                rule,
                rows: payload,
            },
        );
    }

    /// Wave answer handler (both the full and the delta flavour).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_wave_answer(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        from: NodeId,
        round: u32,
        rule: RuleId,
        mut rows: crate::messages::AnswerRows,
        is_delta: bool,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.stats.answers_received += 1;
        if !st.rnd.active || round != st.rnd.round {
            return; // Stale answer for a finished round.
        }
        self.absorb_dict(from, &mut rows);
        self.absorb_null_depths(&rows);
        // Durable peers log the processed answer (rows + the answerer's
        // watermarks — the crash-resync cursor).
        self.log_answer_mark(sid, rule, from, &rows);
        // A delta answer always goes through the cache, even if this peer's
        // own toggle is off (the sender's config decides the payload shape).
        let use_cache = self.config.delta_waves || is_delta;
        if use_cache {
            let cache = st.rnd.wave_cache.entry((rule, from)).or_default();
            let fresh = cache.merge(&rows.vars, rows.rows);
            st.rnd.wave_parts.insert((rule, from), (rows.vars, fresh));
        } else {
            st.rnd
                .wave_parts
                .insert((rule, from), (rows.vars.clone(), rows.rows));
        }
        st.rnd.pending_answers = st.rnd.pending_answers.saturating_sub(1);

        // Recompute the rule if all its fragments arrived this round.
        let arrived = self
            .rules
            .get(&rule)
            .map(|r| r.parts.clone())
            .filter(|parts| {
                parts
                    .iter()
                    .all(|p| st.rnd.wave_parts.contains_key(&(rule, p.node)))
            });
        if let Some(parts) = arrived {
            let inserted = if use_cache {
                // Semi-naive expansion: each fragment's delta against the
                // other fragments' accumulated fulls.
                let staged: Vec<PartDelta> = parts
                    .iter()
                    .map(|p| {
                        let cache = &st.rnd.wave_cache[&(rule, p.node)];
                        let (vars, fresh) = &st.rnd.wave_parts[&(rule, p.node)];
                        PartDelta {
                            full: VarRows {
                                vars: cache.vars.clone(),
                                rows: cache.rows.clone(),
                            },
                            delta: VarRows {
                                vars: vars.clone(),
                                rows: fresh.clone(),
                            },
                        }
                    })
                    .collect();
                match self.rules.get(&rule).cloned() {
                    Some(rule_obj) => {
                        let bindings = join_parts_seminaive(&staged, &rule_obj.join_constraints);
                        self.apply_rule_bindings(&rule_obj, &bindings)
                    }
                    None => 0,
                }
            } else {
                let staged: Vec<VarRows> = parts
                    .iter()
                    .map(|p| {
                        let (vars, rows) = &st.rnd.wave_parts[&(rule, p.node)];
                        VarRows {
                            vars: vars.clone(),
                            rows: rows.clone(),
                        }
                    })
                    .collect();
                self.apply_rule(rule, staged)
            };
            if inserted > 0 {
                st.rnd.dirty_self = true;
            }
        }

        if st.rnd.waves_done() {
            // Serve the queries we held back.
            let deferred = std::mem::take(&mut st.rnd.deferred);
            let r = st.rnd.round;
            for (to, d_rule, d_part) in deferred {
                self.answer_wave(st, sid, to, r, d_rule, &d_part, ctx);
            }
            self.maybe_echo(st, sid, ctx);
        }
    }

    /// Echo handler.
    pub(crate) fn on_round_echo(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        round: u32,
        dirty: bool,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        if !st.rnd.active || round != st.rnd.round {
            return;
        }
        st.rnd.pending_echoes = st.rnd.pending_echoes.saturating_sub(1);
        st.rnd.child_dirty |= dirty;
        self.maybe_echo(st, sid, ctx);
    }

    fn maybe_echo(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        if !st.rnd.flood_seen || st.rnd.echoed || !st.rnd.waves_done() || st.rnd.pending_echoes > 0
        {
            return;
        }
        st.rnd.echoed = true;
        // An outstanding resync marks the subtree dirty: the network must
        // not certify a fix-point while a recovered peer is still waiting
        // for missed rows (a lost resync answer would otherwise close the
        // session with a silent hole). The forced next round re-sends the
        // request.
        let dirty = st.rnd.dirty_self || st.rnd.child_dirty || !self.pending_resync.is_empty();
        match st.rnd.flood_parent {
            Some(parent) => {
                ctx.send(
                    parent,
                    ProtocolMsg::RoundEcho {
                        session: sid,
                        round: st.rnd.round,
                        dirty,
                    },
                );
            }
            None => {
                // Root: the round is complete.
                if dirty {
                    let next = st.rnd.round + 1;
                    self.start_round(st, sid, next, ctx);
                } else {
                    let rounds = st.rnd.round;
                    st.rnd.closed = true;
                    st.rnd.rounds_done = rounds;
                    st.retired = true;
                    self.stats.closed_by = ClosedBy::CleanRound;
                    let me = self.id;
                    ctx.send_to_many(
                        self.sup.all_nodes.iter().copied().filter(|n| *n != me),
                        ProtocolMsg::RoundsClosed {
                            session: sid,
                            rounds,
                        },
                    );
                }
            }
        }
    }

    /// Fix-point broadcast (rounds mode): close and retire the session's
    /// state — after a clean round no wave traffic of this session is in
    /// flight, so nothing can dangle.
    pub(crate) fn on_rounds_closed(&mut self, st: &mut SessionState, rounds: u32) {
        if !st.rnd.active && !self.rules.is_empty() {
            // Disconnected component with rules: genuinely not updated.
            return;
        }
        if !self.pending_resync.is_empty() {
            // Still reconciling a crash: refuse to close (the driver sees
            // the open peer and re-drives, which re-sends the resync).
            return;
        }
        if !st.rnd.active {
            self.note_session_joined();
        }
        st.rnd.closed = true;
        st.rnd.active = true;
        st.rnd.rounds_done = rounds;
        st.retired = true;
        self.stats.closed_by = ClosedBy::CleanRound;
    }
}
