//! The synchronous rounds update — the paper's "synchronous alternative"
//! (Section 1: the asynchronous model "may be faster at expense of an
//! increase of the number of messages"; this mode is the other end of that
//! trade-off).
//!
//! One round = a propagation-of-information-with-feedback (echo) wave:
//!
//! 1. the super-peer floods `RoundStart` along pipes, building a spanning
//!    tree (first-contact parent);
//! 2. every node issues `WaveQuery` for each of its rule fragments;
//! 3. acyclic nodes *defer* their `WaveAnswer`s until their own fragments
//!    have answered (so one wave carries data all the way up a DAG — this is
//!    what keeps tree/layered execution time linear in depth); nodes on
//!    dependency cycles answer immediately with current data (cutting the
//!    wait cycles that would otherwise deadlock);
//! 4. each node echoes to its flood parent once its fragments have answered
//!    and all its flood children have echoed, aggregating a `dirty` bit
//!    ("did anything get inserted in this subtree?");
//! 5. the root starts round *k+1* iff round *k* was dirty, else broadcasts
//!    `RoundsClosed` — the paper's fix-point, reached when a full wave
//!    produced no new data anywhere (exactly the condition its
//!    maximal-dependency-path flags certify).
//!
//! ## Delta-driven wave answers (`SystemConfig::delta_waves`, default on)
//!
//! The paper's fix-point re-evaluates every rule body each round; shipped
//! naively, the extension of every fragment crosses the wire *every* round,
//! so bytes grow quadratically with rounds on cyclic topologies. With
//! `delta_waves` enabled the protocol is **semi-naive** instead:
//!
//! * **Answer side** — a peer keeps, per `(requester, rule)` subscription,
//!   the database watermarks ([`p2p_relational::Database::watermarks`]) as
//!   of its last answer. The first answer ships the full extension
//!   (`WaveAnswer`); every later one delta-evaluates the fragment over
//!   [`p2p_relational::Database::facts_since`] — only bindings using at
//!   least one fact inserted since the watermark — and ships just those
//!   rows as a [`crate::messages::ProtocolMsg::WaveAnswerDelta`].
//! * **Head side** — the head node caches each fragment's accumulated
//!   extension across rounds ([`RoundsState::wave_cache`]) and merges
//!   incoming deltas into it. When all fragments of a rule have answered in
//!   a round, it applies the standard semi-naive expansion
//!   ([`crate::joins::join_parts_seminaive`]): each fragment's *delta*
//!   joined against the other fragments' cached *fulls*, union over the
//!   fragments — every binding using a new row is derived exactly once,
//!   bindings entirely over old rows were derived in an earlier round.
//!
//! Termination, the dirty-bit accounting and the echo tree are unchanged;
//! only the payloads shrink. With `delta_waves` off, every answer re-ships
//! the full current extension — the paper-faithful baseline the delta mode
//! is checked against (tuple-identical final databases).

use crate::joins::{join_parts_seminaive, PartDelta, VarRows};
use crate::messages::ProtocolMsg;
use crate::peer::DbPeer;
use crate::rule::{BodyPart, RuleId};
use crate::stats::ClosedBy;
use p2p_net::Context;
use p2p_relational::Tuple;
use p2p_topology::NodeId;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// A shipped fragment extension: variable names plus rows over them.
pub type WaveRows = (Vec<Arc<str>>, Vec<Tuple>);

/// Answer-side delta subscription: what this peer remembers about the last
/// wave answer it shipped to one `(requester, rule)`.
#[derive(Debug, Clone, Default)]
pub struct WaveSub {
    /// Per-relation insertion watermarks at the time of the last answer.
    pub watermarks: BTreeMap<Arc<str>, usize>,
    /// Cumulative rows shipped on this subscription (what a full re-ship
    /// would have re-sent; feeds the `rows_saved` statistic).
    pub rows_sent: u64,
}

/// Head-side per-fragment cache: the extension accumulated across rounds.
#[derive(Debug, Clone, Default)]
pub struct PartCache {
    /// Column variables (fixed by the fragment).
    pub vars: Vec<Arc<str>>,
    /// Accumulated rows, in arrival order. Kept alongside `set` because the
    /// semi-naive join stages from here: iterating the `HashSet` instead
    /// would leak nondeterministic order into join output, insertion order
    /// and shipped rows — every observable order in this crate is
    /// deterministic by design.
    pub rows: Vec<Tuple>,
    /// Fast membership for `rows`.
    pub set: HashSet<Tuple>,
}

impl PartCache {
    /// Merges shipped rows into the cache, returning only the genuinely
    /// new ones (in arrival order). Sets the column variables on first
    /// contact. Keeps `rows` and `set` in lockstep — the invariant the
    /// semi-naive join's determinism rests on — so every merge site
    /// (wave answers, resync answers, recovery priming) goes through here.
    pub fn merge(&mut self, vars: &[Arc<str>], rows: Vec<Tuple>) -> Vec<Tuple> {
        if self.vars.is_empty() {
            self.vars = vars.to_vec();
        }
        let mut fresh = Vec::new();
        for t in rows {
            if self.set.insert(t.clone()) {
                self.rows.push(t.clone());
                fresh.push(t);
            }
        }
        fresh
    }
}

/// Rounds-mode state of one peer.
#[derive(Debug, Clone, Default)]
pub struct RoundsState {
    /// A rounds session is active.
    pub active: bool,
    /// Current round (1-based).
    pub round: u32,
    /// The round's flood reached this node.
    pub flood_seen: bool,
    /// Flood parent (None at the root).
    pub flood_parent: Option<NodeId>,
    /// Echoes still expected from pipe neighbours.
    pub pending_echoes: usize,
    /// Aggregated dirtiness of children subtrees.
    pub child_dirty: bool,
    /// Wave answers still expected for own fragments.
    pub pending_answers: usize,
    /// Facts were inserted at this node this round.
    pub dirty_self: bool,
    /// Echo already sent this round.
    pub echoed: bool,
    /// Queries deferred until own fragments answered.
    pub deferred: Vec<(NodeId, RuleId, BodyPart)>,
    /// Fragment extensions received this round, per `(rule, body node)`:
    /// with `delta_waves` the rows *new to the cache* this round, otherwise
    /// the full shipped extension.
    pub wave_parts: BTreeMap<(RuleId, NodeId), WaveRows>,
    /// Answer-side delta subscriptions, per `(requester, rule)`. Survives
    /// round resets (a session-lifetime map).
    pub wave_subs: BTreeMap<(NodeId, RuleId), WaveSub>,
    /// Head-side fragment caches, per `(rule, body node)`. Survives round
    /// resets (a session-lifetime map).
    pub wave_cache: BTreeMap<(RuleId, NodeId), PartCache>,
    /// Fix-point reached.
    pub closed: bool,
    /// Total rounds executed (set at closure; at the root, running count).
    pub rounds_done: u32,
}

impl RoundsState {
    fn waves_done(&self) -> bool {
        self.pending_answers == 0
    }
}

impl DbPeer {
    /// Root: begin rounds-mode session.
    pub(crate) fn start_rounds(&mut self, ctx: &mut Context<ProtocolMsg>) {
        self.rnd = RoundsState {
            active: true,
            ..Default::default()
        };
        self.start_round(1, ctx);
    }

    pub(crate) fn start_round(&mut self, round: u32, ctx: &mut Context<ProtocolMsg>) {
        self.enter_round(round, ctx);
        self.rnd.flood_seen = true;
        self.rnd.flood_parent = None;
        self.rnd.rounds_done = round;
        // Pipes plus the full roster: components not pipe-connected to the
        // root must still participate in the wave (same rationale as the
        // eager flood's direct-coverage backstop).
        let mut targets: std::collections::BTreeSet<NodeId> = self.pipes.clone();
        targets.extend(self.sup.all_nodes.iter().copied());
        targets.remove(&self.id);
        self.rnd.pending_echoes = targets.len();
        for p in targets {
            ctx.send(p, ProtocolMsg::RoundStart { round });
        }
        self.maybe_echo(ctx);
    }

    /// Resets per-round state and issues this node's wave queries. Called on
    /// first contact with a round (flood or query, whichever arrives first).
    /// The delta-wave maps (`wave_subs`, `wave_cache`) are session-lifetime
    /// and carry over.
    fn enter_round(&mut self, round: u32, ctx: &mut Context<ProtocolMsg>) {
        if self.rnd.active && self.rnd.round >= round {
            return;
        }
        self.stats.rounds += 1;
        let wave_subs = std::mem::take(&mut self.rnd.wave_subs);
        let wave_cache = std::mem::take(&mut self.rnd.wave_cache);
        self.rnd = RoundsState {
            active: true,
            round,
            closed: false,
            wave_subs,
            wave_cache,
            ..Default::default()
        };
        let rules: Vec<_> = self.rules.values().cloned().collect();
        let mut expected = 0usize;
        for rule in &rules {
            for part in &rule.parts {
                expected += 1;
                self.stats.queries_sent += 1;
                ctx.send(
                    part.node,
                    ProtocolMsg::WaveQuery {
                        round,
                        rule: rule.id,
                        part: part.clone(),
                    },
                );
            }
        }
        self.rnd.pending_answers = expected;
        // Crash recovery: give any still-unanswered resync request another
        // chance with the new round (at-least-once; see `durability`).
        self.resend_pending_resyncs(ctx);
    }

    /// Flood handler.
    pub(crate) fn on_round_start(
        &mut self,
        from: NodeId,
        round: u32,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.add_pipe(from);
        self.enter_round(round, ctx);
        if round < self.rnd.round {
            // Stale flood from a previous round: answer so the (obsolete)
            // counter drains; the sender ignores stale echoes.
            ctx.send(
                from,
                ProtocolMsg::RoundEcho {
                    round,
                    dirty: false,
                },
            );
            return;
        }
        if !self.rnd.flood_seen {
            self.rnd.flood_seen = true;
            self.rnd.flood_parent = Some(from);
            let targets: Vec<NodeId> = self.pipes.iter().copied().filter(|p| *p != from).collect();
            self.rnd.pending_echoes = targets.len();
            for p in targets {
                ctx.send(p, ProtocolMsg::RoundStart { round });
            }
            self.maybe_echo(ctx);
        } else {
            // Duplicate contact: immediate non-child echo.
            ctx.send(
                from,
                ProtocolMsg::RoundEcho {
                    round,
                    dirty: false,
                },
            );
        }
    }

    /// Wave query handler.
    pub(crate) fn on_wave_query(
        &mut self,
        from: NodeId,
        round: u32,
        rule: RuleId,
        part: BodyPart,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.stats.queries_received += 1;
        self.add_pipe(from);
        self.enter_round(round, ctx);
        if round < self.rnd.round {
            // Stale: the requester has moved past this round and
            // `on_wave_answer` will drop the payload unread, so shipping the
            // full current extension would be pure waste (and would
            // misattribute the bytes as useful traffic). Send an empty
            // acknowledgement — enough to drain the old round's counter if
            // anyone is still waiting — accounted separately.
            self.stats.stale_answers_sent += 1;
            let payload = crate::messages::AnswerRows {
                vars: part.vars.clone(),
                rows: Vec::new(),
                null_depths: Vec::new(),
                // No watermarks: a stale ack is not a processed answer and
                // must not advance anyone's resync cursor.
                marks: BTreeMap::new(),
                dict: Vec::new(),
            };
            ctx.send(
                from,
                ProtocolMsg::WaveAnswer {
                    round,
                    rule,
                    rows: payload,
                },
            );
            return;
        }
        let defer = !self.in_cycle && !self.rnd.waves_done();
        if defer {
            self.rnd.deferred.push((from, rule, part));
        } else {
            self.answer_wave(from, round, rule, &part, ctx);
        }
    }

    /// Ships one wave answer: a full extension on first contact (or with
    /// `delta_waves` off), a semi-naive delta afterwards.
    fn answer_wave(
        &mut self,
        to: NodeId,
        round: u32,
        rule: RuleId,
        part: &BodyPart,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        let key = (to, rule);
        if self.config.delta_waves && self.rnd.wave_subs.contains_key(&key) {
            // Re-answer: only rows derived from facts inserted since the
            // last answer to this requester.
            let prev_sent = self.rnd.wave_subs[&key].rows_sent;
            let watermarks = self.rnd.wave_subs[&key].watermarks.clone();
            let rows = self.eval_part_delta_local(part, &watermarks, ctx);
            let shipped = rows.len() as u64;
            self.stats.answers_sent += 1;
            self.stats.delta_answers_sent += 1;
            self.stats.rows_shipped += shipped;
            self.stats.rows_saved += prev_sent;
            let payload = self.make_answer_rows(to, &part.vars, rows);
            let marks = self.db.watermarks();
            if let Some(sub) = self.rnd.wave_subs.get_mut(&key) {
                sub.watermarks = marks;
                sub.rows_sent += shipped;
            }
            ctx.send(
                to,
                ProtocolMsg::WaveAnswerDelta {
                    round,
                    rule,
                    rows: payload,
                },
            );
            return;
        }
        let rows = self.eval_part_local(part, ctx);
        self.stats.answers_sent += 1;
        self.stats.rows_shipped += rows.len() as u64;
        if self.config.delta_waves {
            self.rnd.wave_subs.insert(
                key,
                WaveSub {
                    watermarks: self.db.watermarks(),
                    rows_sent: rows.len() as u64,
                },
            );
        }
        let payload = self.make_answer_rows(to, &part.vars, rows);
        ctx.send(
            to,
            ProtocolMsg::WaveAnswer {
                round,
                rule,
                rows: payload,
            },
        );
    }

    /// Wave answer handler (both the full and the delta flavour).
    pub(crate) fn on_wave_answer(
        &mut self,
        from: NodeId,
        round: u32,
        rule: RuleId,
        rows: crate::messages::AnswerRows,
        is_delta: bool,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.stats.answers_received += 1;
        if !self.rnd.active || round != self.rnd.round {
            return; // Stale answer for a finished round.
        }
        self.absorb_dict(from, &rows);
        self.absorb_null_depths(&rows);
        // Durable peers log the processed answer (rows + the answerer's
        // watermarks — the crash-resync cursor).
        self.log_answer_mark(rule, from, &rows);
        // A delta answer always goes through the cache, even if this peer's
        // own toggle is off (the sender's config decides the payload shape).
        let use_cache = self.config.delta_waves || is_delta;
        if use_cache {
            let cache = self.rnd.wave_cache.entry((rule, from)).or_default();
            let fresh = cache.merge(&rows.vars, rows.rows);
            self.rnd.wave_parts.insert((rule, from), (rows.vars, fresh));
        } else {
            self.rnd
                .wave_parts
                .insert((rule, from), (rows.vars.clone(), rows.rows));
        }
        self.rnd.pending_answers = self.rnd.pending_answers.saturating_sub(1);

        // Recompute the rule if all its fragments arrived this round.
        let arrived = self
            .rules
            .get(&rule)
            .map(|r| r.parts.clone())
            .filter(|parts| {
                parts
                    .iter()
                    .all(|p| self.rnd.wave_parts.contains_key(&(rule, p.node)))
            });
        if let Some(parts) = arrived {
            let inserted = if use_cache {
                // Semi-naive expansion: each fragment's delta against the
                // other fragments' accumulated fulls.
                let staged: Vec<PartDelta> = parts
                    .iter()
                    .map(|p| {
                        let cache = &self.rnd.wave_cache[&(rule, p.node)];
                        let (vars, fresh) = &self.rnd.wave_parts[&(rule, p.node)];
                        PartDelta {
                            full: VarRows {
                                vars: cache.vars.clone(),
                                rows: cache.rows.clone(),
                            },
                            delta: VarRows {
                                vars: vars.clone(),
                                rows: fresh.clone(),
                            },
                        }
                    })
                    .collect();
                match self.rules.get(&rule).cloned() {
                    Some(rule_obj) => {
                        let bindings = join_parts_seminaive(&staged, &rule_obj.join_constraints);
                        self.apply_rule_bindings(&rule_obj, &bindings)
                    }
                    None => 0,
                }
            } else {
                let staged: Vec<VarRows> = parts
                    .iter()
                    .map(|p| {
                        let (vars, rows) = &self.rnd.wave_parts[&(rule, p.node)];
                        VarRows {
                            vars: vars.clone(),
                            rows: rows.clone(),
                        }
                    })
                    .collect();
                self.apply_rule(rule, staged)
            };
            if inserted > 0 {
                self.rnd.dirty_self = true;
            }
        }

        if self.rnd.waves_done() {
            // Serve the queries we held back.
            let deferred = std::mem::take(&mut self.rnd.deferred);
            let r = self.rnd.round;
            for (to, d_rule, d_part) in deferred {
                self.answer_wave(to, r, d_rule, &d_part, ctx);
            }
            self.maybe_echo(ctx);
        }
    }

    /// Echo handler.
    pub(crate) fn on_round_echo(
        &mut self,
        round: u32,
        dirty: bool,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        if !self.rnd.active || round != self.rnd.round {
            return;
        }
        self.rnd.pending_echoes = self.rnd.pending_echoes.saturating_sub(1);
        self.rnd.child_dirty |= dirty;
        self.maybe_echo(ctx);
    }

    fn maybe_echo(&mut self, ctx: &mut Context<ProtocolMsg>) {
        if !self.rnd.flood_seen
            || self.rnd.echoed
            || !self.rnd.waves_done()
            || self.rnd.pending_echoes > 0
        {
            return;
        }
        self.rnd.echoed = true;
        // An outstanding resync marks the subtree dirty: the network must
        // not certify a fix-point while a recovered peer is still waiting
        // for missed rows (a lost resync answer would otherwise close the
        // session with a silent hole). The forced next round re-sends the
        // request.
        let dirty = self.rnd.dirty_self || self.rnd.child_dirty || !self.pending_resync.is_empty();
        match self.rnd.flood_parent {
            Some(parent) => {
                ctx.send(
                    parent,
                    ProtocolMsg::RoundEcho {
                        round: self.rnd.round,
                        dirty,
                    },
                );
            }
            None => {
                // Root: the round is complete.
                if dirty {
                    let next = self.rnd.round + 1;
                    self.start_round(next, ctx);
                } else {
                    let rounds = self.rnd.round;
                    self.rnd.closed = true;
                    self.rnd.rounds_done = rounds;
                    self.stats.closed_by = ClosedBy::CleanRound;
                    for n in self.sup.all_nodes.clone() {
                        if n != self.id {
                            ctx.send(n, ProtocolMsg::RoundsClosed { rounds });
                        }
                    }
                }
            }
        }
    }

    /// Fix-point broadcast (rounds mode).
    pub(crate) fn on_rounds_closed(&mut self, rounds: u32) {
        if !self.rnd.active && !self.rules.is_empty() {
            // Disconnected component with rules: genuinely not updated.
            return;
        }
        if !self.pending_resync.is_empty() {
            // Still reconciling a crash: refuse to close (the driver sees
            // the open peer and re-drives, which re-sends the resync).
            return;
        }
        self.rnd.closed = true;
        self.rnd.active = true;
        self.rnd.rounds_done = rounds;
        self.stats.closed_by = ClosedBy::CleanRound;
    }
}
