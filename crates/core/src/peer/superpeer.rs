//! Super-peer duties (Section 5 of the paper).
//!
//! The super-peer is an ordinary peer — "a super-peer does not have any
//! other property differentiating it from other nodes" — plus driver
//! capabilities the paper's prototype gave it: starting discovery and
//! global updates, routing dynamic-change notifications, broadcasting a
//! network-wide rule file ("one peer can change the network topology at
//! run-time"), and commanding statistics collection/reset.

use crate::config::UpdateMode;
use crate::dynamic::ChangeOp;
use crate::messages::ProtocolMsg;
use crate::peer::DbPeer;
use crate::rule::CoordinationRule;
use crate::stats::PeerStats;
use p2p_net::Context;
use p2p_topology::NodeId;
use std::collections::BTreeMap;

/// Driver-side state kept by the super-peer.
#[derive(Debug, Clone, Default)]
pub struct SuperState {
    /// Full node roster (the super-peer reads the network rule file, so it
    /// legitimately knows everyone).
    pub all_nodes: Vec<NodeId>,
    /// Current update epoch.
    pub epoch: u32,
    /// Fix-point broadcast generation within the epoch.
    pub fixpoint_generation: u32,
    /// The root already broadcast for the current quiet period.
    pub root_quiet: bool,
    /// Stats gathered from peers on `CollectStats`.
    pub collected: BTreeMap<NodeId, PeerStats>,
}

impl DbPeer {
    /// Driver command: start a global update session.
    pub(crate) fn start_update(&mut self, epoch: u32, ctx: &mut Context<ProtocolMsg>) {
        self.sup.epoch = epoch;
        match self.config.mode {
            UpdateMode::Eager => {
                self.ds.reset();
                self.ds.engage_as_root();
                self.sup.root_quiet = false;
                self.sup.fixpoint_generation = 0;
                self.begin_epoch(epoch, ctx, &[]);
                if self.config.initiation == crate::config::Initiation::Flood {
                    self.upd.flood_seen = true;
                    // Acquaintance flood (the paper's propagation) plus a
                    // direct send to every rostered node: the super-peer read
                    // the network rule file (Section 5), so it can reach
                    // components no pipe path connects it to — otherwise the
                    // *global* update would silently skip them.
                    let mut targets = self.pipes.clone();
                    targets.extend(self.sup.all_nodes.iter().copied());
                    targets.remove(&self.id);
                    for p in targets {
                        self.send_basic(ctx, p, ProtocolMsg::UpdateFlood { epoch });
                    }
                }
            }
            UpdateMode::Rounds => self.start_rounds(ctx),
        }
    }

    /// Driver command: query-dependent update rooted at this node. Pure A4
    /// propagation: only nodes on dependency paths from here participate, so
    /// the refresh touches exactly the data local queries can depend on.
    pub(crate) fn start_scoped_update(&mut self, epoch: u32, ctx: &mut Context<ProtocolMsg>) {
        if self.config.mode != UpdateMode::Eager {
            self.fail("query-dependent updates require the eager update mode");
            return;
        }
        self.sup.epoch = epoch;
        self.ds.reset();
        self.ds.engage_as_root();
        self.sup.root_quiet = false;
        self.sup.fixpoint_generation = 0;
        self.begin_epoch(epoch, ctx, &[]);
    }

    /// Driver command: apply a dynamic change (Section 4). The super-peer
    /// notifies the head node — `addRule(i, j, rule, id)` /
    /// `deleteRule(i, j, id)`.
    pub(crate) fn apply_change(&mut self, change: ChangeOp, ctx: &mut Context<ProtocolMsg>) {
        if self.config.mode != UpdateMode::Eager {
            self.fail("dynamic changes require the eager update mode");
            return;
        }
        match change {
            ChangeOp::AddLink { rule } => {
                let head = rule.head_node;
                if head == self.id {
                    // The change touches the super-peer itself.
                    self.on_add_rule(rule, ctx);
                } else {
                    self.send_basic(ctx, head, ProtocolMsg::AddRule { rule });
                }
            }
            ChangeOp::DeleteLink { rule, head } => {
                if head == self.id {
                    self.on_delete_rule(rule, ctx);
                } else {
                    self.send_basic(ctx, head, ProtocolMsg::DeleteRule { rule });
                }
            }
        }
    }

    /// Driver command: resume a stalled rounds-mode session (churn broke a
    /// wave — a crashed peer cannot echo, so the round never completed).
    /// Starting a fresh round strictly above every peer's current one
    /// restarts the wave machinery while keeping all delta state (wave
    /// subscriptions, fragment caches), so the resumed session ships
    /// deltas, not the world, and its clean round re-certifies the
    /// fix-point.
    pub(crate) fn on_resume_rounds(&mut self, round: u32, ctx: &mut Context<ProtocolMsg>) {
        if self.config.mode != UpdateMode::Rounds {
            self.fail("ResumeRounds requires the rounds update mode");
            return;
        }
        self.rnd.active = true;
        self.rnd.closed = false;
        self.start_round(round, ctx);
    }

    /// Driver command: gather statistics from every peer.
    pub(crate) fn on_collect_stats(&mut self, from: NodeId, ctx: &mut Context<ProtocolMsg>) {
        if self.is_super {
            self.sup.collected.clear();
            self.sup.collected.insert(self.id, self.stats.clone());
            for n in self.sup.all_nodes.clone() {
                if n != self.id {
                    ctx.send(n, ProtocolMsg::CollectStats);
                }
            }
        } else {
            ctx.send(
                from,
                ProtocolMsg::StatsReport {
                    stats: self.stats.clone(),
                },
            );
        }
    }

    /// A peer's statistics arriving at the super-peer.
    pub(crate) fn on_stats_report(&mut self, from: NodeId, stats: PeerStats) {
        if self.is_super {
            self.sup.collected.insert(from, stats);
        }
    }

    /// Driver command: reset statistics at all peers.
    pub(crate) fn on_reset_stats(&mut self, _from: NodeId, ctx: &mut Context<ProtocolMsg>) {
        if self.is_super {
            for n in self.sup.all_nodes.clone() {
                if n != self.id {
                    ctx.send(n, ProtocolMsg::ResetStats);
                }
            }
        }
        self.stats.reset();
    }

    /// Rule-file broadcast: every peer replaces its rules with the ones
    /// targeting it and recomputes its pipes — "each peer looks for relevant
    /// to it coordination rules, reads them, creates and drops pipes with
    /// other nodes, where necessary".
    pub(crate) fn on_broadcast_rules(
        &mut self,
        _from: NodeId,
        rules: Vec<CoordinationRule>,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        if self.is_super {
            for n in self.sup.all_nodes.clone() {
                if n != self.id {
                    ctx.send(
                        n,
                        ProtocolMsg::BroadcastRules {
                            rules: rules.clone(),
                        },
                    );
                }
            }
        }
        // Adopt the new rule set.
        self.rules.clear();
        self.pipes.clear();
        for rule in rules {
            if rule.head_node == self.id {
                self.install_rule(rule.clone());
            }
            if rule.parts.iter().any(|p| p.node == self.id) {
                self.add_pipe(rule.head_node);
            }
        }
        // Sessions built on the old topology are void.
        self.upd = Default::default();
        self.rnd = Default::default();
        self.disc = Default::default();
        self.ds.reset();
        self.in_cycle = true; // conservative until re-analysed
    }
}
