//! Driver duties (Section 5 of the paper).
//!
//! The super-peer is an ordinary peer — "a super-peer does not have any
//! other property differentiating it from other nodes" — plus driver
//! capabilities the paper's prototype gave it: routing dynamic-change
//! notifications, broadcasting a network-wide rule file ("one peer can
//! change the network topology at run-time"), and commanding statistics
//! collection/reset. Starting an update session is **not** a super-peer
//! privilege: any node handed a `StartUpdate`/`StartScopedUpdate` command
//! becomes the root of its own session, and any number of such sessions run
//! interleaved.

use crate::config::UpdateMode;
use crate::dynamic::ChangeOp;
use crate::messages::ProtocolMsg;
use crate::peer::{DbPeer, SessionState};
use crate::rule::CoordinationRule;
use crate::stats::PeerStats;
use p2p_net::{Context, SessionId};
use p2p_topology::NodeId;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Driver-side state kept by every peer (the roster) and the super-peer
/// (collected statistics, current session for change routing).
#[derive(Debug, Clone, Default)]
pub struct SuperState {
    /// Full node roster (installed at build time on every peer, so any node
    /// can root a session and broadcast its fix-point). One shared
    /// allocation across all peers — at 10k+ nodes a per-peer copy would be
    /// O(n²) build memory.
    pub all_nodes: Arc<[NodeId]>,
    /// The most recent session rooted at this node (dynamic-change
    /// notifications are routed within it).
    pub session: Option<SessionId>,
    /// Fix-point broadcast generation of the session this node currently
    /// roots. Lives outside the session entry on purpose: a post-fixpoint
    /// dynamic change re-creates the retired entry, and the re-quiesce
    /// broadcast must carry a generation **strictly above** the original
    /// one — otherwise a still-in-flight copy of the old broadcast would be
    /// indistinguishable from the new one. Reset when a new session starts.
    pub fixpoint_generation: u32,
    /// Stats gathered from peers on `CollectStats`.
    pub collected: BTreeMap<NodeId, PeerStats>,
}

impl DbPeer {
    /// Driver command: start a global update session rooted here.
    pub(crate) fn start_update(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        self.sup.session = Some(sid);
        self.sup.fixpoint_generation = 0;
        match self.config.mode {
            UpdateMode::Eager => {
                st.ds.reset();
                st.ds.engage_as_root();
                st.root_quiet = false;
                self.begin_session(st, sid, ctx, &[]);
                if self.config.initiation == crate::config::Initiation::Flood {
                    st.upd.flood_seen = true;
                    // Acquaintance flood (the paper's propagation) plus a
                    // direct send to every rostered node: the rule file is
                    // network-wide knowledge (Section 5), so the root can
                    // reach components no pipe path connects it to —
                    // otherwise the *global* update would silently skip
                    // them.
                    let mut targets = self.pipes.clone();
                    targets.extend(self.sup.all_nodes.iter().copied());
                    targets.remove(&self.id);
                    self.send_basic_many(
                        st,
                        ctx,
                        targets,
                        ProtocolMsg::UpdateFlood { session: sid },
                    );
                }
            }
            UpdateMode::Rounds => self.start_rounds(st, sid, ctx),
        }
    }

    /// Driver command: query-dependent update rooted at this node. Pure A4
    /// propagation: only nodes on dependency paths from here participate, so
    /// the refresh touches exactly the data local queries can depend on.
    pub(crate) fn start_scoped_update(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        if self.config.mode != UpdateMode::Eager {
            self.fail("query-dependent updates require the eager update mode");
            return;
        }
        self.sup.session = Some(sid);
        self.sup.fixpoint_generation = 0;
        st.ds.reset();
        st.ds.engage_as_root();
        st.root_quiet = false;
        self.begin_session(st, sid, ctx, &[]);
    }

    /// Driver command: apply a dynamic change (Section 4). The super-peer
    /// notifies the head node — `addRule(i, j, rule, id)` /
    /// `deleteRule(i, j, id)` — within its most recent session. With no
    /// session ever rooted here, the notification is routed **outside** any
    /// diffusing computation (plain send, synthetic epoch 0): the head only
    /// installs/removes the rule, and neither end creates session state —
    /// engaging a detector for a session that can never terminate would
    /// leak a permanently engaged entry.
    pub(crate) fn apply_change(&mut self, change: ChangeOp, ctx: &mut Context<ProtocolMsg>) {
        if self.config.mode != UpdateMode::Eager {
            self.fail("dynamic changes require the eager update mode");
            return;
        }
        let Some(sid) = self.sup.session else {
            let zero = SessionId::new(self.id, 0);
            match change {
                ChangeOp::AddLink { rule } => {
                    if rule.head_node == self.id {
                        self.install_rule(rule);
                    } else {
                        let head = rule.head_node;
                        ctx.send(
                            head,
                            ProtocolMsg::AddRule {
                                session: zero,
                                rule,
                            },
                        );
                    }
                }
                ChangeOp::DeleteLink { rule, head } => {
                    if head == self.id {
                        self.rules.remove(&rule);
                        self.pending_resync.retain(|(_, r, _), _| *r != rule);
                    } else {
                        ctx.send(
                            head,
                            ProtocolMsg::DeleteRule {
                                session: zero,
                                rule,
                            },
                        );
                    }
                }
            }
            return;
        };
        // Take this root's session entry out (re-creating a retired one: a
        // change arriving after the fix-point broadcast legitimately
        // re-opens the session; the root re-engages, re-joins, and
        // re-quiesces — the re-broadcast then retires everything again).
        let mut st = self.sessions.remove(&sid).unwrap_or_default();
        if sid.root == self.id && !st.ds.engaged() {
            st.ds.engage_as_root();
            st.root_quiet = false;
        }
        st.retired = false;
        self.done.remove(&sid);
        if sid.epoch > 0 && !st.upd.active {
            // A retired root must re-join its own session: termination's
            // `RootTerminated` hook only re-broadcasts for an *active*
            // root, and the re-woken region can only close through that
            // broadcast.
            self.begin_session(&mut st, sid, ctx, &[]);
        }
        match change {
            ChangeOp::AddLink { rule } => {
                let head = rule.head_node;
                if head == self.id {
                    // The change touches the root itself.
                    self.on_add_rule(&mut st, sid, rule, ctx);
                } else {
                    self.send_basic(
                        &mut st,
                        ctx,
                        head,
                        ProtocolMsg::AddRule { session: sid, rule },
                    );
                }
            }
            ChangeOp::DeleteLink { rule, head } => {
                if head == self.id {
                    self.on_delete_rule(&mut st, sid, rule, ctx);
                } else {
                    self.send_basic(
                        &mut st,
                        ctx,
                        head,
                        ProtocolMsg::DeleteRule { session: sid, rule },
                    );
                }
            }
        }
        self.after_event(&mut st, sid, ctx);
        self.finish_session_event(sid, st);
    }

    /// Driver command: resume a stalled rounds-mode session (churn broke a
    /// wave — a crashed peer cannot echo, so the round never completed).
    /// Starting a fresh round strictly above every peer's current one
    /// restarts the wave machinery while keeping all session-scoped delta
    /// state (wave subscriptions, fragment caches), so the resumed session
    /// ships deltas, not the world, and its clean round re-certifies the
    /// fix-point.
    pub(crate) fn on_resume_rounds(
        &mut self,
        st: &mut SessionState,
        sid: SessionId,
        round: u32,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        if self.config.mode != UpdateMode::Rounds {
            self.fail("ResumeRounds requires the rounds update mode");
            return;
        }
        if !st.rnd.active {
            self.note_session_joined();
        }
        st.rnd.active = true;
        st.rnd.closed = false;
        st.retired = false;
        self.start_round(st, sid, round, ctx);
    }

    /// Driver command: gather statistics from every peer.
    pub(crate) fn on_collect_stats(&mut self, from: NodeId, ctx: &mut Context<ProtocolMsg>) {
        if self.is_super {
            self.sup.collected.clear();
            self.sup.collected.insert(self.id, self.stats.clone());
            let me = self.id;
            ctx.send_to_many(
                self.sup.all_nodes.iter().copied().filter(|n| *n != me),
                ProtocolMsg::CollectStats,
            );
        } else {
            ctx.send(
                from,
                ProtocolMsg::StatsReport {
                    stats: self.stats.clone(),
                },
            );
        }
    }

    /// A peer's statistics arriving at the super-peer.
    pub(crate) fn on_stats_report(&mut self, from: NodeId, stats: PeerStats) {
        if self.is_super {
            self.sup.collected.insert(from, stats);
        }
    }

    /// Driver command: reset statistics at all peers.
    pub(crate) fn on_reset_stats(&mut self, _from: NodeId, ctx: &mut Context<ProtocolMsg>) {
        if self.is_super {
            let me = self.id;
            ctx.send_to_many(
                self.sup.all_nodes.iter().copied().filter(|n| *n != me),
                ProtocolMsg::ResetStats,
            );
        }
        self.stats.reset();
    }

    /// Rule-file broadcast: every peer replaces its rules with the ones
    /// targeting it and recomputes its pipes — "each peer looks for relevant
    /// to it coordination rules, reads them, creates and drops pipes with
    /// other nodes, where necessary".
    pub(crate) fn on_broadcast_rules(
        &mut self,
        _from: NodeId,
        rules: Vec<CoordinationRule>,
        ctx: &mut Context<ProtocolMsg>,
    ) {
        if self.is_super {
            // One shared payload for the whole roster — the rule file used
            // to be cloned once per peer.
            let me = self.id;
            ctx.send_to_many(
                self.sup.all_nodes.iter().copied().filter(|n| *n != me),
                ProtocolMsg::BroadcastRules {
                    rules: rules.clone(),
                },
            );
        }
        // Adopt the new rule set.
        self.rules.clear();
        self.pipes.clear();
        for rule in rules {
            if rule.head_node == self.id {
                self.install_rule(rule.clone());
            }
            if rule.parts.iter().any(|p| p.node == self.id) {
                self.add_pipe(rule.head_node);
            }
        }
        // Sessions and discovery knowledge built on the old topology are
        // void.
        self.sessions.clear();
        self.done.clear();
        self.pending_resync.clear();
        self.disc = Default::default();
        self.in_cycle = true; // conservative until re-analysed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::rule::CoordinationRule;
    use p2p_relational::{Database, DatabaseSchema};

    fn resolve(s: &str) -> Option<NodeId> {
        match s {
            "A" => Some(NodeId(0)),
            "B" => Some(NodeId(1)),
            _ => None,
        }
    }

    /// A dynamic change applied before any session ever started is routed
    /// outside the session machinery: nothing is engaged, nothing leaks,
    /// and the notification carries the synthetic epoch-0 tag.
    #[test]
    fn pre_session_change_creates_no_session_state() {
        let schema = DatabaseSchema::parse("a(x: int).").unwrap();
        let mut peer = DbPeer::new(NodeId(0), Database::new(schema), SystemConfig::default());
        peer.make_super(vec![NodeId(0), NodeId(1)]);
        let rule = CoordinationRule::parse("r", "A:a(X) => B:b(X)", None, &resolve).unwrap();
        let mut ctx = Context::new(p2p_net::SimTime::ZERO, NodeId(0));
        peer.apply_change(ChangeOp::AddLink { rule: rule.clone() }, &mut ctx);
        let out = ctx.take_outgoing();
        assert_eq!(out.len(), 1);
        match &*out[0].msg {
            ProtocolMsg::AddRule { session, .. } => assert_eq!(session.epoch, 0),
            other => panic!("expected AddRule, got {other:?}"),
        }
        assert_eq!(
            peer.session_table_len(),
            0,
            "no session may be created (a detector for it could never terminate)"
        );
        assert_eq!(peer.sessions_done(), 0);

        // Deleting pre-session likewise only routes the notification.
        let mut ctx = Context::new(p2p_net::SimTime::ZERO, NodeId(0));
        peer.apply_change(
            ChangeOp::DeleteLink {
                rule: rule.id,
                head: NodeId(1),
            },
            &mut ctx,
        );
        assert_eq!(peer.session_table_len(), 0);
    }
}
