//! Binary wire codec for [`ProtocolMsg`].
//!
//! The JSON codec spells out field names and decimal digits on every
//! message; measured `payload_bytes` showed most wire bytes were syntax,
//! not data. This module is the compact alternative: a hand-specialized
//! framing for the protocol's hot shapes, built on the vendored
//! [`binpack`] primitives (varints, zigzag folding, length prefixes).
//!
//! ## Layout
//!
//! A message is a 1-byte **variant tag** (declaration order of
//! [`ProtocolMsg`]'s variants) followed by its fields:
//!
//! * Session ids, node ids, rule ids, rounds, counters — varints (zigzag
//!   where negative values are possible).
//! * Booleans — one byte, `0`/`1`.
//! * [`AnswerRows`] — the hot payload — gets a **columnar delta block**,
//!   see below.
//! * Cold, deeply structured fields (rule definitions, change ops, stats
//!   reports, body parts) — length-prefixed generic `binpack` documents;
//!   they are rare enough that self-describing generality beats
//!   special-casing.
//!
//! ## Columnar row blocks
//!
//! `AnswerRows.rows` is a slice of same-arity tuples (PR 4 made rows
//! columnar in memory). The codec streams them **column-major**: per
//! column, one tag byte per value (`0` int, `1` symbol, `2` labeled null)
//! followed by a payload that is *delta-encoded against the previous value
//! of the same kind in the same column* — sorted ids and clustered
//! constants collapse to 1–2 bytes each. Dictionaries ship sorted
//! `SymId`s, so they delta the same way. Ragged row sets (possible after
//! deserializing foreign input) fall back to a generic document, flagged
//! in the block header.
//!
//! ## LZ block layer
//!
//! Row blocks and embedded documents carry the protocol's string content
//! — first-use symbol dictionaries full of titles, author names and
//! venues whose words repeat heavily. Each such block passes through
//! [`binpack::lz`] and ships compressed when that is strictly smaller
//! (a 1-byte flag records the choice, raw otherwise). The compressor is
//! deterministic, so the choice is too: re-encoding a decoded message
//! reproduces the exact wire bytes.
//!
//! The JSON codec stays the default and the two are byte-for-byte
//! round-trip equivalent on the same message values — the differential
//! proptests in `tests/proptest_codec.rs` hold both codecs to that.

use crate::messages::{AnswerRows, ProtocolMsg};
use crate::rule::RuleId;
use binpack::{Error, Reader, Writer};
use p2p_net::SessionId;
use p2p_relational::value::NullId;
use p2p_relational::{SymId, Tuple, Val};
use p2p_topology::NodeId;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Encodes a message under the binary codec. Infallible for protocol
/// messages: the only encoder error is a non-finite float, and no wire
/// type carries floats.
pub fn encode_msg(msg: &ProtocolMsg) -> Vec<u8> {
    p2p_net::codec::note_encode_pass();
    let mut w = Writer::new();
    write_msg(&mut w, msg).expect("protocol messages carry no floats");
    w.into_bytes()
}

/// The binary-encoded byte length of a message — one encode pass.
pub fn encoded_msg_len(msg: &ProtocolMsg) -> usize {
    encode_msg(msg).len()
}

/// Decodes a message, rejecting trailing bytes.
pub fn decode_msg(bytes: &[u8]) -> Result<ProtocolMsg, Error> {
    let mut r = Reader::new(bytes);
    let msg = read_msg(&mut r)?;
    if !r.is_at_end() {
        return Err(Error::TrailingBytes(r.remaining()));
    }
    Ok(msg)
}

fn put_session(w: &mut Writer, s: SessionId) {
    w.put_varint(u64::from(s.root.0));
    w.put_varint(s.epoch);
}

fn get_session(r: &mut Reader<'_>) -> Result<SessionId, Error> {
    let root = get_node(r)?;
    let epoch = r.get_varint()?;
    Ok(SessionId::new(root, epoch))
}

fn get_node(r: &mut Reader<'_>) -> Result<NodeId, Error> {
    Ok(NodeId(
        u32::try_from(r.get_varint()?).map_err(|_| Error::BadVarint)?,
    ))
}

fn get_rule(r: &mut Reader<'_>) -> Result<RuleId, Error> {
    Ok(RuleId(
        u32::try_from(r.get_varint()?).map_err(|_| Error::BadVarint)?,
    ))
}

fn put_bool(w: &mut Writer, b: bool) {
    w.put_u8(u8::from(b));
}

fn get_bool(r: &mut Reader<'_>) -> Result<bool, Error> {
    match r.get_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(Error::BadTag(other)),
    }
}

const BLOCK_RAW: u8 = 0;
const BLOCK_LZ: u8 = 1;

/// Embeds a byte block, LZ-compressed when that is strictly smaller: a
/// flag byte (`0` raw, `1` compressed) then the length-prefixed bytes.
/// The choice is deterministic, so re-encoding a decoded value reproduces
/// the exact wire bytes.
fn put_block(w: &mut Writer, raw: &[u8]) {
    let packed = binpack::lz::compress(raw);
    if packed.len() < raw.len() {
        w.put_u8(BLOCK_LZ);
        w.put_bytes(&packed);
    } else {
        w.put_u8(BLOCK_RAW);
        w.put_bytes(raw);
    }
}

fn get_block(r: &mut Reader<'_>) -> Result<Vec<u8>, Error> {
    match r.get_u8()? {
        BLOCK_RAW => Ok(r.get_bytes()?.to_vec()),
        BLOCK_LZ => binpack::lz::decompress(r.get_bytes()?),
        tag => Err(Error::BadTag(tag)),
    }
}

/// Cold structured fields travel as embedded generic documents.
fn put_doc<T: serde::Serialize>(w: &mut Writer, value: &T) -> Result<(), Error> {
    let doc = binpack::to_bytes(value)?;
    put_block(w, &doc);
    Ok(())
}

fn get_doc<T: serde::Deserialize>(r: &mut Reader<'_>) -> Result<T, Error> {
    binpack::from_bytes(&get_block(r)?)
}

// ----------------------------------------------------------- answer rows

const VAL_INT: u8 = 0;
const VAL_SYM: u8 = 1;
const VAL_NULL: u8 = 2;

const ROWS_COLUMNAR: u8 = 0;
const ROWS_GENERIC: u8 = 1;

/// Per-column delta state: each value kind deltas against the previous
/// value of the same kind in the column.
#[derive(Default)]
struct ColDelta {
    prev_int: i64,
    prev_sym: i64,
    prev_null_node: i64,
    prev_null_counter: i64,
}

impl ColDelta {
    fn put(&mut self, w: &mut Writer, v: Val) {
        match v {
            Val::Int(i) => {
                w.put_u8(VAL_INT);
                w.put_zigzag(i.wrapping_sub(self.prev_int));
                self.prev_int = i;
            }
            Val::Sym(s) => {
                w.put_u8(VAL_SYM);
                let id = i64::from(s.0);
                w.put_zigzag(id - self.prev_sym);
                self.prev_sym = id;
            }
            Val::Null(n) => {
                w.put_u8(VAL_NULL);
                let node = i64::from(n.node());
                let counter = n.counter() as i64;
                w.put_zigzag(node - self.prev_null_node);
                w.put_zigzag(counter - self.prev_null_counter);
                self.prev_null_node = node;
                self.prev_null_counter = counter;
            }
        }
    }

    fn get(&mut self, r: &mut Reader<'_>) -> Result<Val, Error> {
        Ok(match r.get_u8()? {
            VAL_INT => {
                let i = self.prev_int.wrapping_add(r.get_zigzag()?);
                self.prev_int = i;
                Val::Int(i)
            }
            VAL_SYM => {
                let id = self.prev_sym + r.get_zigzag()?;
                self.prev_sym = id;
                Val::Sym(SymId(u32::try_from(id).map_err(|_| Error::BadVarint)?))
            }
            VAL_NULL => {
                let node = self.prev_null_node + r.get_zigzag()?;
                let counter = self.prev_null_counter + r.get_zigzag()?;
                self.prev_null_node = node;
                self.prev_null_counter = counter;
                Val::Null(NullId::new(
                    u32::try_from(node).map_err(|_| Error::BadVarint)?,
                    u64::try_from(counter).map_err(|_| Error::BadVarint)?,
                ))
            }
            tag => return Err(Error::BadTag(tag)),
        })
    }
}

/// Answer payloads are where the string content lives (first-use symbol
/// dictionaries: titles, names, venues). The whole block goes through
/// [`put_block`], so its internal redundancy is LZ-compressed away on top
/// of the varint/delta packing.
fn put_rows(w: &mut Writer, rows: &AnswerRows) -> Result<(), Error> {
    let mut inner = Writer::new();
    put_rows_inner(&mut inner, rows)?;
    put_block(w, &inner.into_bytes());
    Ok(())
}

fn get_rows(r: &mut Reader<'_>) -> Result<AnswerRows, Error> {
    let raw = get_block(r)?;
    let mut inner = Reader::new(&raw);
    let rows = get_rows_inner(&mut inner)?;
    if !inner.is_at_end() {
        return Err(Error::TrailingBytes(inner.remaining()));
    }
    Ok(rows)
}

fn put_rows_inner(w: &mut Writer, rows: &AnswerRows) -> Result<(), Error> {
    w.put_varint(rows.vars.len() as u64);
    for v in &rows.vars {
        w.put_str(v);
    }
    let arity = rows.rows.first().map(|t| t.0.len()).unwrap_or(0);
    let uniform = rows.rows.iter().all(|t| t.0.len() == arity);
    if uniform {
        w.put_u8(ROWS_COLUMNAR);
        w.put_varint(rows.rows.len() as u64);
        w.put_varint(arity as u64);
        // Column-major with per-column delta state: down a column, ids and
        // clustered constants change slowly, so most values are 2 bytes.
        for col in 0..arity {
            let mut delta = ColDelta::default();
            for row in &rows.rows {
                delta.put(w, row.0[col]);
            }
        }
    } else {
        // Ragged rows cannot stream column-major; ship the self-describing
        // generic form (rare: only foreign/hand-built payloads are ragged).
        w.put_u8(ROWS_GENERIC);
        put_doc(w, &rows.rows)?;
    }
    w.put_varint(rows.null_depths.len() as u64);
    for (null, depth) in &rows.null_depths {
        w.put_varint(u64::from(null.node()));
        w.put_varint(null.counter());
        w.put_varint(u64::from(*depth));
    }
    w.put_varint(rows.marks.len() as u64);
    for (rel, mark) in &rows.marks {
        w.put_str(rel);
        w.put_varint(*mark as u64);
    }
    w.put_varint(rows.dict.len() as u64);
    let mut prev_sym = 0i64;
    for (sym, text) in &rows.dict {
        // First-use dictionaries ship freshly interned (hence clustered)
        // ids; delta them like a symbol column.
        let id = i64::from(sym.0);
        w.put_zigzag(id - prev_sym);
        prev_sym = id;
        w.put_str(text);
    }
    Ok(())
}

fn get_rows_inner(r: &mut Reader<'_>) -> Result<AnswerRows, Error> {
    let nvars = r.get_varint()? as usize;
    let mut vars = Vec::with_capacity(nvars.min(r.remaining() + 1));
    for _ in 0..nvars {
        vars.push(Arc::<str>::from(r.get_str()?));
    }
    let rows: Vec<Tuple> = match r.get_u8()? {
        ROWS_COLUMNAR => {
            let nrows = r.get_varint()? as usize;
            let arity = r.get_varint()? as usize;
            if nrows
                .checked_mul(arity.max(1))
                .map(|cells| cells > r.remaining() + 1)
                .unwrap_or(true)
            {
                return Err(Error::Truncated);
            }
            let mut columns: Vec<Vec<Val>> = Vec::with_capacity(arity);
            for _ in 0..arity {
                let mut delta = ColDelta::default();
                let mut col = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    col.push(delta.get(r)?);
                }
                columns.push(col);
            }
            (0..nrows)
                .map(|i| Tuple::new(columns.iter().map(|c| c[i]).collect()))
                .collect()
        }
        ROWS_GENERIC => get_doc(r)?,
        tag => return Err(Error::BadTag(tag)),
    };
    let ndepths = r.get_varint()? as usize;
    let mut null_depths = Vec::with_capacity(ndepths.min(r.remaining() + 1));
    for _ in 0..ndepths {
        let node = u32::try_from(r.get_varint()?).map_err(|_| Error::BadVarint)?;
        let counter = r.get_varint()?;
        let depth = u32::try_from(r.get_varint()?).map_err(|_| Error::BadVarint)?;
        null_depths.push((NullId::new(node, counter), depth));
    }
    let nmarks = r.get_varint()? as usize;
    let mut marks = BTreeMap::new();
    for _ in 0..nmarks {
        let rel = Arc::<str>::from(r.get_str()?);
        let mark = usize::try_from(r.get_varint()?).map_err(|_| Error::BadVarint)?;
        marks.insert(rel, mark);
    }
    let ndict = r.get_varint()? as usize;
    let mut dict = Vec::with_capacity(ndict.min(r.remaining() + 1));
    let mut prev_sym = 0i64;
    for _ in 0..ndict {
        let id = prev_sym + r.get_zigzag()?;
        prev_sym = id;
        let text = Arc::<str>::from(r.get_str()?);
        dict.push((
            SymId(u32::try_from(id).map_err(|_| Error::BadVarint)?),
            text,
        ));
    }
    Ok(AnswerRows {
        vars,
        rows,
        null_depths,
        marks,
        dict,
    })
}

/// The binary-encoded size of an answer payload alone (the per-codec
/// `payload_bytes` counter in `PeerStats` reads this).
pub fn encoded_rows_len(rows: &AnswerRows) -> usize {
    let mut w = Writer::new();
    put_rows(&mut w, rows).expect("answer rows carry no floats");
    w.len()
}

// ------------------------------------------------------------- messages

fn write_msg(w: &mut Writer, msg: &ProtocolMsg) -> Result<(), Error> {
    match msg {
        ProtocolMsg::StartDiscovery => w.put_u8(0),
        ProtocolMsg::StartUpdate { session } => {
            w.put_u8(1);
            put_session(w, *session);
        }
        ProtocolMsg::StartScopedUpdate { session } => {
            w.put_u8(2);
            put_session(w, *session);
        }
        ProtocolMsg::ApplyChange { change } => {
            w.put_u8(3);
            put_doc(w, change)?;
        }
        ProtocolMsg::CollectStats => w.put_u8(4),
        ProtocolMsg::ResetStats => w.put_u8(5),
        ProtocolMsg::BroadcastRules { rules } => {
            w.put_u8(6);
            put_doc(w, rules)?;
        }
        ProtocolMsg::RequestNodes { owner } => {
            w.put_u8(7);
            w.put_varint(u64::from(owner.0));
        }
        ProtocolMsg::DiscoveryAnswer {
            owner,
            edges,
            closed,
            finished,
        } => {
            w.put_u8(8);
            w.put_varint(u64::from(owner.0));
            w.put_varint(edges.len() as u64);
            for (a, b) in edges {
                w.put_varint(u64::from(a.0));
                w.put_varint(u64::from(b.0));
            }
            put_bool(w, *closed);
            put_bool(w, *finished);
        }
        ProtocolMsg::DiscoveryClosed => w.put_u8(9),
        ProtocolMsg::UpdateFlood { session } => {
            w.put_u8(10);
            put_session(w, *session);
        }
        ProtocolMsg::Query {
            session,
            rule,
            part,
            sn,
        } => {
            w.put_u8(11);
            put_session(w, *session);
            w.put_varint(u64::from(rule.0));
            put_doc(w, part)?;
            w.put_varint(sn.len() as u64);
            for n in sn {
                w.put_varint(u64::from(n.0));
            }
        }
        ProtocolMsg::Answer {
            session,
            rule,
            rows,
            complete,
            reopen,
        } => {
            w.put_u8(12);
            put_session(w, *session);
            w.put_varint(u64::from(rule.0));
            put_rows(w, rows)?;
            put_bool(w, *complete);
            put_bool(w, *reopen);
        }
        ProtocolMsg::Unsubscribe { session, rule } => {
            w.put_u8(13);
            put_session(w, *session);
            w.put_varint(u64::from(rule.0));
        }
        ProtocolMsg::Fixpoint {
            session,
            generation,
        } => {
            w.put_u8(14);
            put_session(w, *session);
            w.put_varint(u64::from(*generation));
        }
        ProtocolMsg::Ack { session } => {
            w.put_u8(15);
            put_session(w, *session);
        }
        ProtocolMsg::RoundStart { session, round } => {
            w.put_u8(16);
            put_session(w, *session);
            w.put_varint(u64::from(*round));
        }
        ProtocolMsg::RoundEcho {
            session,
            round,
            dirty,
        } => {
            w.put_u8(17);
            put_session(w, *session);
            w.put_varint(u64::from(*round));
            put_bool(w, *dirty);
        }
        ProtocolMsg::WaveQuery {
            session,
            round,
            rule,
            part,
        } => {
            w.put_u8(18);
            put_session(w, *session);
            w.put_varint(u64::from(*round));
            w.put_varint(u64::from(rule.0));
            put_doc(w, part)?;
        }
        ProtocolMsg::WaveAnswer {
            session,
            round,
            rule,
            rows,
        } => {
            w.put_u8(19);
            put_session(w, *session);
            w.put_varint(u64::from(*round));
            w.put_varint(u64::from(rule.0));
            put_rows(w, rows)?;
        }
        ProtocolMsg::WaveAnswerDelta {
            session,
            round,
            rule,
            rows,
        } => {
            w.put_u8(20);
            put_session(w, *session);
            w.put_varint(u64::from(*round));
            w.put_varint(u64::from(rule.0));
            put_rows(w, rows)?;
        }
        ProtocolMsg::RoundsClosed { session, rounds } => {
            w.put_u8(21);
            put_session(w, *session);
            w.put_varint(u64::from(*rounds));
        }
        ProtocolMsg::ResyncRequest {
            session,
            rule,
            part,
            since,
        } => {
            w.put_u8(22);
            put_session(w, *session);
            w.put_varint(u64::from(rule.0));
            put_doc(w, part)?;
            w.put_varint(since.len() as u64);
            for (rel, mark) in since {
                w.put_str(rel);
                w.put_varint(*mark as u64);
            }
        }
        ProtocolMsg::ResyncAnswer {
            session,
            rule,
            rows,
        } => {
            w.put_u8(23);
            put_session(w, *session);
            w.put_varint(u64::from(rule.0));
            put_rows(w, rows)?;
        }
        ProtocolMsg::ResumeRounds { session, round } => {
            w.put_u8(24);
            put_session(w, *session);
            w.put_varint(u64::from(*round));
        }
        ProtocolMsg::AddRule { session, rule } => {
            w.put_u8(25);
            put_session(w, *session);
            put_doc(w, rule)?;
        }
        ProtocolMsg::DeleteRule { session, rule } => {
            w.put_u8(26);
            put_session(w, *session);
            w.put_varint(u64::from(rule.0));
        }
        ProtocolMsg::StatsReport { stats } => {
            w.put_u8(27);
            put_doc(w, stats)?;
        }
    }
    Ok(())
}

fn read_msg(r: &mut Reader<'_>) -> Result<ProtocolMsg, Error> {
    Ok(match r.get_u8()? {
        0 => ProtocolMsg::StartDiscovery,
        1 => ProtocolMsg::StartUpdate {
            session: get_session(r)?,
        },
        2 => ProtocolMsg::StartScopedUpdate {
            session: get_session(r)?,
        },
        3 => ProtocolMsg::ApplyChange {
            change: get_doc(r)?,
        },
        4 => ProtocolMsg::CollectStats,
        5 => ProtocolMsg::ResetStats,
        6 => ProtocolMsg::BroadcastRules { rules: get_doc(r)? },
        7 => ProtocolMsg::RequestNodes {
            owner: get_node(r)?,
        },
        8 => {
            let owner = get_node(r)?;
            let nedges = r.get_varint()? as usize;
            let mut edges = BTreeSet::new();
            for _ in 0..nedges {
                let a = get_node(r)?;
                let b = get_node(r)?;
                edges.insert((a, b));
            }
            ProtocolMsg::DiscoveryAnswer {
                owner,
                edges,
                closed: get_bool(r)?,
                finished: get_bool(r)?,
            }
        }
        9 => ProtocolMsg::DiscoveryClosed,
        10 => ProtocolMsg::UpdateFlood {
            session: get_session(r)?,
        },
        11 => {
            let session = get_session(r)?;
            let rule = get_rule(r)?;
            let part = get_doc(r)?;
            let nsn = r.get_varint()? as usize;
            let mut sn = Vec::with_capacity(nsn.min(r.remaining() + 1));
            for _ in 0..nsn {
                sn.push(get_node(r)?);
            }
            ProtocolMsg::Query {
                session,
                rule,
                part,
                sn,
            }
        }
        12 => ProtocolMsg::Answer {
            session: get_session(r)?,
            rule: get_rule(r)?,
            rows: get_rows(r)?,
            complete: get_bool(r)?,
            reopen: get_bool(r)?,
        },
        13 => ProtocolMsg::Unsubscribe {
            session: get_session(r)?,
            rule: get_rule(r)?,
        },
        14 => ProtocolMsg::Fixpoint {
            session: get_session(r)?,
            generation: u32::try_from(r.get_varint()?).map_err(|_| Error::BadVarint)?,
        },
        15 => ProtocolMsg::Ack {
            session: get_session(r)?,
        },
        16 => ProtocolMsg::RoundStart {
            session: get_session(r)?,
            round: u32::try_from(r.get_varint()?).map_err(|_| Error::BadVarint)?,
        },
        17 => ProtocolMsg::RoundEcho {
            session: get_session(r)?,
            round: u32::try_from(r.get_varint()?).map_err(|_| Error::BadVarint)?,
            dirty: get_bool(r)?,
        },
        18 => ProtocolMsg::WaveQuery {
            session: get_session(r)?,
            round: u32::try_from(r.get_varint()?).map_err(|_| Error::BadVarint)?,
            rule: get_rule(r)?,
            part: get_doc(r)?,
        },
        19 => ProtocolMsg::WaveAnswer {
            session: get_session(r)?,
            round: u32::try_from(r.get_varint()?).map_err(|_| Error::BadVarint)?,
            rule: get_rule(r)?,
            rows: get_rows(r)?,
        },
        20 => ProtocolMsg::WaveAnswerDelta {
            session: get_session(r)?,
            round: u32::try_from(r.get_varint()?).map_err(|_| Error::BadVarint)?,
            rule: get_rule(r)?,
            rows: get_rows(r)?,
        },
        21 => ProtocolMsg::RoundsClosed {
            session: get_session(r)?,
            rounds: u32::try_from(r.get_varint()?).map_err(|_| Error::BadVarint)?,
        },
        22 => {
            let session = get_session(r)?;
            let rule = get_rule(r)?;
            let part = get_doc(r)?;
            let nsince = r.get_varint()? as usize;
            let mut since = BTreeMap::new();
            for _ in 0..nsince {
                let rel = Arc::<str>::from(r.get_str()?);
                let mark = usize::try_from(r.get_varint()?).map_err(|_| Error::BadVarint)?;
                since.insert(rel, mark);
            }
            ProtocolMsg::ResyncRequest {
                session,
                rule,
                part,
                since,
            }
        }
        23 => ProtocolMsg::ResyncAnswer {
            session: get_session(r)?,
            rule: get_rule(r)?,
            rows: get_rows(r)?,
        },
        24 => ProtocolMsg::ResumeRounds {
            session: get_session(r)?,
            round: u32::try_from(r.get_varint()?).map_err(|_| Error::BadVarint)?,
        },
        25 => ProtocolMsg::AddRule {
            session: get_session(r)?,
            rule: get_doc(r)?,
        },
        26 => ProtocolMsg::DeleteRule {
            session: get_session(r)?,
            rule: get_rule(r)?,
        },
        27 => ProtocolMsg::StatsReport { stats: get_doc(r)? },
        tag => return Err(Error::BadTag(tag)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(epoch: u64) -> SessionId {
        SessionId::new(NodeId(3), epoch)
    }

    fn sample_rows() -> AnswerRows {
        AnswerRows {
            vars: vec![Arc::from("X"), Arc::from("Y")],
            rows: (0..20)
                .map(|i| {
                    Tuple::new(vec![
                        Val::Int(1000 + i),
                        if i % 3 == 0 {
                            Val::Null(NullId::new(2, 40 + i as u64))
                        } else {
                            Val::Sym(SymId(700 + i as u32))
                        },
                    ])
                })
                .collect(),
            null_depths: vec![(NullId::new(2, 40), 1), (NullId::new(2, 43), 2)],
            marks: [(Arc::<str>::from("t1"), 17usize)].into_iter().collect(),
            dict: vec![
                (SymId(700), Arc::from("alpha")),
                (SymId(701), Arc::from("beta")),
                (SymId(702), Arc::from("gamma")),
            ],
        }
    }

    fn roundtrip(msg: &ProtocolMsg) -> ProtocolMsg {
        let bytes = encode_msg(msg);
        assert_eq!(encoded_msg_len(msg), bytes.len());
        decode_msg(&bytes).expect("decode")
    }

    /// `ProtocolMsg` has no `PartialEq`; the JSON text is its canonical
    /// comparable form.
    fn assert_same(a: &ProtocolMsg, b: &ProtocolMsg) {
        assert_eq!(
            serde_json::to_string(a).unwrap(),
            serde_json::to_string(b).unwrap()
        );
    }

    #[test]
    fn answer_with_rows_roundtrips() {
        let msg = ProtocolMsg::Answer {
            session: sid(5),
            rule: RuleId(2),
            rows: sample_rows(),
            complete: true,
            reopen: false,
        };
        assert_same(&roundtrip(&msg), &msg);
    }

    #[test]
    fn every_unit_and_scalar_variant_roundtrips() {
        let msgs = vec![
            ProtocolMsg::StartDiscovery,
            ProtocolMsg::StartUpdate { session: sid(1) },
            ProtocolMsg::StartScopedUpdate { session: sid(2) },
            ProtocolMsg::CollectStats,
            ProtocolMsg::ResetStats,
            ProtocolMsg::RequestNodes { owner: NodeId(9) },
            ProtocolMsg::DiscoveryAnswer {
                owner: NodeId(1),
                edges: [(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]
                    .into_iter()
                    .collect(),
                closed: true,
                finished: false,
            },
            ProtocolMsg::DiscoveryClosed,
            ProtocolMsg::UpdateFlood { session: sid(3) },
            ProtocolMsg::Unsubscribe {
                session: sid(3),
                rule: RuleId(7),
            },
            ProtocolMsg::Fixpoint {
                session: sid(3),
                generation: 2,
            },
            ProtocolMsg::Ack { session: sid(3) },
            ProtocolMsg::RoundStart {
                session: sid(4),
                round: 9,
            },
            ProtocolMsg::RoundEcho {
                session: sid(4),
                round: 9,
                dirty: true,
            },
            ProtocolMsg::RoundsClosed {
                session: sid(4),
                rounds: 12,
            },
            ProtocolMsg::ResumeRounds {
                session: sid(4),
                round: 13,
            },
            ProtocolMsg::DeleteRule {
                session: sid(4),
                rule: RuleId(1_000_001),
            },
            ProtocolMsg::StatsReport {
                stats: crate::stats::PeerStats::default(),
            },
        ];
        for msg in &msgs {
            assert_same(&roundtrip(msg), msg);
        }
    }

    #[test]
    fn binary_is_much_smaller_than_json_on_row_payloads() {
        let msg = ProtocolMsg::Answer {
            session: sid(5),
            rule: RuleId(2),
            rows: sample_rows(),
            complete: true,
            reopen: false,
        };
        let json = serde_json::to_string(&msg).unwrap().len();
        let binary = encoded_msg_len(&msg);
        assert!(
            binary * 3 <= json,
            "binary {binary} bytes not ≥3× smaller than JSON {json} bytes"
        );
    }

    #[test]
    fn ragged_rows_fall_back_to_the_generic_form() {
        let rows = AnswerRows {
            vars: vec![Arc::from("X")],
            rows: vec![
                Tuple::new(vec![Val::Int(1)]),
                Tuple::new(vec![Val::Int(2), Val::Int(3)]),
            ],
            ..AnswerRows::default()
        };
        let msg = ProtocolMsg::ResyncAnswer {
            session: sid(1),
            rule: RuleId(0),
            rows,
        };
        assert_same(&roundtrip(&msg), &msg);
    }

    #[test]
    fn truncated_and_garbage_messages_error() {
        let bytes = encode_msg(&ProtocolMsg::Ack { session: sid(3) });
        assert!(decode_msg(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_msg(&[200]).is_err());
        assert!(decode_msg(&[]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_msg(&trailing).is_err());
    }

    #[test]
    fn rows_payload_length_matches_embedded_encoding() {
        let rows = sample_rows();
        let mut w = Writer::new();
        put_rows(&mut w, &rows).unwrap();
        assert_eq!(encoded_rows_len(&rows), w.len());
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(get_rows(&mut r).unwrap(), rows);
        assert!(r.is_at_end());
    }
}
