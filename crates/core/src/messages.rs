//! Protocol messages.
//!
//! Message kinds reuse the paper's names where one exists (`requestNodes`,
//! `Query`, `Answer` — see Figure 1); the wire-size estimates drive the
//! byte accounting and bandwidth-aware latency of `p2p-net`.
//!
//! Every message belonging to an update session carries its
//! [`SessionId`] — the pair `(root, epoch)` identifying the diffusing
//! computation it serves. Any number of sessions, initiated by any nodes,
//! run interleaved in one network run; the session tag is what routes each
//! message to the right per-session state table at the receiving peer and
//! what the transport layer attributes traces and per-session traffic
//! counters by.

use crate::dynamic::ChangeOp;
use crate::rule::{BodyPart, CoordinationRule, RuleId};
use crate::stats::PeerStats;
use p2p_net::{SessionId, Wire};
use p2p_relational::value::NullId;
use p2p_relational::{SymId, Tuple};
use p2p_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Rows shipped in an answer: bindings of a body part's variables.
///
/// The serialized form omits the optional sections (`null_depths`, `marks`,
/// `dict`) when empty — ground answers under the default configuration pay
/// zero bytes for machinery they don't use.
#[derive(Debug, Clone, Default, PartialEq, Eq, Deserialize)]
pub struct AnswerRows {
    /// Variable names, defining the column order of `rows`.
    pub vars: Vec<Arc<str>>,
    /// One tuple per satisfying assignment.
    pub rows: Vec<Tuple>,
    /// Chase depths of labeled nulls occurring in `rows` (receivers feed
    /// these into their own chase state so the depth safety valve is global).
    #[serde(default)]
    pub null_depths: Vec<(NullId, u32)>,
    /// The answerer's per-relation insertion watermarks at evaluation time.
    /// Durable receivers log these with the answer; after a crash they are
    /// the resync cursor — the restarted peer asks only for rows derived
    /// from facts beyond the last watermark it durably processed. Empty on
    /// payload-free acknowledgements (stale acks, reopen notices).
    #[serde(default)]
    pub marks: BTreeMap<Arc<str>, usize>,
    /// First-use dictionary delta: `(symbol, string)` definitions for
    /// interned constants in `rows` that the sender has never shipped to
    /// this recipient before. Rows carry 4-byte `SymId`s; this is the sync
    /// that lets the recipient resolve them — sound because the paper's
    /// Definition 1 makes the constant set `C` network-wide. Each string
    /// crosses each pipe at most once; the receiver folds the delta into its
    /// catalog view before touching the rows.
    #[serde(default)]
    pub dict: Vec<(SymId, Arc<str>)>,
}

impl serde::Serialize for AnswerRows {
    fn to_content(&self) -> serde::Content {
        let mut m: Vec<(String, serde::Content)> = vec![
            ("vars".to_string(), self.vars.to_content()),
            ("rows".to_string(), self.rows.to_content()),
        ];
        if !self.null_depths.is_empty() {
            m.push(("null_depths".to_string(), self.null_depths.to_content()));
        }
        if !self.marks.is_empty() {
            m.push(("marks".to_string(), self.marks.to_content()));
        }
        if !self.dict.is_empty() {
            m.push(("dict".to_string(), self.dict.to_content()));
        }
        serde::Content::Map(m)
    }
}

impl AnswerRows {
    /// Exact encoded size of this payload in bytes.
    pub fn wire_size(&self) -> usize {
        p2p_net::encoded_wire_size(self)
    }

    /// What the **pre-interning** data plane would have put on the wire for
    /// the same payload: every row carries its strings inline and there is
    /// no dictionary section. Measured (not estimated) by encoding the
    /// resolved mirror of the payload — the counterfactual that experiment
    /// `e16` reports against.
    pub fn wire_size_legacy(&self) -> usize {
        use serde::Serialize as _;
        let rows: Vec<Vec<p2p_relational::Value>> = self
            .rows
            .iter()
            .map(|t| t.0.iter().map(|v| v.to_value()).collect())
            .collect();
        // Mirror of `AnswerRows::to_content` with strings inline and no
        // dictionary section, same empty-section omission for fairness.
        let mut m: Vec<(String, serde::Content)> = vec![
            ("vars".to_string(), self.vars.to_content()),
            ("rows".to_string(), rows.to_content()),
        ];
        if !self.null_depths.is_empty() {
            m.push(("null_depths".to_string(), self.null_depths.to_content()));
        }
        if !self.marks.is_empty() {
            m.push(("marks".to_string(), self.marks.to_content()));
        }
        p2p_net::encoded_wire_size(&serde::Content::Map(m))
    }
}

/// All messages exchanged by peers (and by the external driver with the
/// super-peer).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ProtocolMsg {
    // ---------------- driver → root commands ----------------
    /// Kick off topology discovery (algorithm A1).
    StartDiscovery,
    /// Kick off a global update session rooted at the receiving node.
    StartUpdate {
        /// The session (the receiving node is its root).
        session: SessionId,
    },
    /// Kick off a **query-dependent** update (Section 5: the prototype
    /// "supports both global and query-dependent updates handling"): the
    /// receiving node refreshes only the data its own dependency paths can
    /// reach, via pure A4 query propagation — no flood, no other roots.
    StartScopedUpdate {
        /// The session (the receiving node is its root).
        session: SessionId,
    },
    /// Apply one dynamic network change (Section 4). The super-peer routes
    /// the resulting `addRule`/`deleteRule` notification to the head node.
    ApplyChange {
        /// The change operation.
        change: ChangeOp,
    },
    /// Ask every peer for its statistics (flooded; peers reply with
    /// [`ProtocolMsg::StatsReport`] straight to the super-peer).
    CollectStats,
    /// Reset statistics at all peers (flooded).
    ResetStats,
    /// Replace the coordination rules of the whole network from a rule file
    /// read by the super-peer (Section 5: "one peer can change the network
    /// topology at runtime"). Flooded; every peer picks out the rules
    /// relevant to it.
    BroadcastRules {
        /// The full new rule set.
        rules: Vec<CoordinationRule>,
    },

    // ---------------- topology discovery (A1–A3) ----------------
    /// `requestNodes(IDs, IDo)`: sender asks the recipient to explore on
    /// behalf of `owner`.
    RequestNodes {
        /// The node on whose behalf discovery runs (`IDo`).
        owner: NodeId,
    },
    /// `processAnswer(...)`: dependency edges discovered so far, plus the
    /// answering node's discovery state.
    DiscoveryAnswer {
        /// Owner this answer serves.
        owner: NodeId,
        /// Dependency edges known to the answerer.
        edges: BTreeSet<(NodeId, NodeId)>,
        /// Answerer's `state_d == closed`.
        closed: bool,
        /// This branch of the exploration is exhausted.
        finished: bool,
    },
    /// Owner's final broadcast: discovery is complete network-wide, every
    /// participant may close and compute its maximal dependency paths.
    DiscoveryClosed,

    // ---------------- update, eager mode (A4–A6) ----------------
    /// Global update request flooded along pipes (see
    /// [`crate::config::Initiation::Flood`]).
    UpdateFlood {
        /// Update session.
        session: SessionId,
    },
    /// `Query(IDs, Q, SN)`: the head node of `rule` asks a body node for its
    /// fragment's extension, subscribing itself for deltas.
    Query {
        /// Update session.
        session: SessionId,
        /// The rule this query serves.
        rule: RuleId,
        /// The fragment to evaluate (atoms + pushed-down constraints).
        part: BodyPart,
        /// The dependency path the request travelled (the paper's `SN`).
        sn: Vec<NodeId>,
    },
    /// `Answer(ID, QA, SN, state)`: fragment extension (delta or full).
    Answer {
        /// Update session.
        session: SessionId,
        /// The rule being answered.
        rule: RuleId,
        /// The bindings.
        rows: AnswerRows,
        /// Sender's `state_u == closed` at send time — the paper's
        /// completeness flag feeding the per-rule closure criterion.
        complete: bool,
        /// Sender re-opened after a dynamic change: the recipient must
        /// invalidate the completeness it recorded for this rule.
        reopen: bool,
    },
    /// Head node dropped the rule (dynamic `deleteLink`); the body node
    /// removes the subscription.
    Unsubscribe {
        /// Update session.
        session: SessionId,
        /// Rule whose subscription dies.
        rule: RuleId,
    },
    /// Root's fix-point broadcast: the diffusing computation terminated;
    /// everyone still open closes (`ClosedBy::RootBroadcast`) and retires
    /// the session's state.
    Fixpoint {
        /// Update session.
        session: SessionId,
        /// Broadcast generation (re-broadcasts happen when dynamic changes
        /// re-open and re-quiesce the same session).
        generation: u32,
    },
    /// Dijkstra–Scholten acknowledgement (control plane). Session-tagged so
    /// the receiver debits the right session's deficit counter — each
    /// session is its own diffusing computation with its own detector.
    Ack {
        /// The session whose basic message is being acknowledged.
        session: SessionId,
    },

    // ---------------- update, rounds mode ----------------
    /// Round `round` begins: flooded along pipes, building the echo tree.
    RoundStart {
        /// Update session.
        session: SessionId,
        /// Round number (1-based within a session).
        round: u32,
    },
    /// Echo to the flood parent: this subtree is done with the round.
    RoundEcho {
        /// Update session.
        session: SessionId,
        /// Round number.
        round: u32,
        /// Whether anything was inserted in the subtree this round.
        dirty: bool,
    },
    /// Per-rule fragment query within a round.
    WaveQuery {
        /// Update session.
        session: SessionId,
        /// Round number.
        round: u32,
        /// Rule served.
        rule: RuleId,
        /// Fragment to evaluate.
        part: BodyPart,
    },
    /// Fragment extension for a round.
    WaveAnswer {
        /// Update session.
        session: SessionId,
        /// Round number.
        round: u32,
        /// Rule served.
        rule: RuleId,
        /// Full bindings as of the answerer's current state.
        rows: AnswerRows,
    },
    /// Delta fragment extension for a round (`SystemConfig::delta_waves`):
    /// only the rows derived from facts inserted since the answerer's last
    /// answer to this requester **within this session**. First contact
    /// always uses a full [`ProtocolMsg::WaveAnswer`]; the requester merges
    /// deltas into its per-session fragment cache and joins semi-naively.
    WaveAnswerDelta {
        /// Update session.
        session: SessionId,
        /// Round number.
        round: u32,
        /// Rule served.
        rule: RuleId,
        /// The new bindings only.
        rows: AnswerRows,
    },
    /// Clean-round broadcast: fix-point reached, close everywhere and retire
    /// the session's state.
    RoundsClosed {
        /// Update session.
        session: SessionId,
        /// Total rounds executed.
        rounds: u32,
    },

    // ---------------- durability & churn ----------------
    /// A restarted peer asks a rule fragment's body node for everything it
    /// missed while down: rows of `part` derived from facts the body node
    /// inserted after `since` — the watermark of the last answer the
    /// requester **durably** processed (empty = never answered, which
    /// degenerates to the full extension). This reuses the delta-wave
    /// watermark machinery, so recovery never re-propagates the world.
    ResyncRequest {
        /// The session whose durable answer log the cursor came from (the
        /// repaired rows flow back into that session's fragment cache).
        session: SessionId,
        /// The rule whose fragment is being reconciled.
        rule: RuleId,
        /// The fragment to evaluate.
        part: BodyPart,
        /// The requester's last durable watermark of the answerer's
        /// database.
        since: BTreeMap<Arc<str>, usize>,
    },
    /// The body node's reply: the delta since the requested watermark (the
    /// payload's `marks` carry the new watermark, as in every answer).
    ResyncAnswer {
        /// The session being repaired (echoed from the request).
        session: SessionId,
        /// The rule being reconciled.
        rule: RuleId,
        /// The missed rows.
        rows: AnswerRows,
    },
    /// Driver command: resume a stalled rounds-mode session at `round`
    /// after churn broke a wave (a crashed peer cannot echo, so the echo
    /// tree never completes; the driver detects the stall at quiescence and
    /// re-drives). Delta state — wave subscriptions and caches — survives,
    /// so the resumed wave ships deltas, not the world.
    ResumeRounds {
        /// The stalled session to resume.
        session: SessionId,
        /// The round to start (strictly above every peer's current round).
        round: u32,
    },

    // ---------------- dynamic changes (Section 4) ----------------
    /// `addRule(i, j, rule, id)` notification to the head node, applied
    /// within `session`.
    AddRule {
        /// The session the change joins (the super-peer's current one).
        session: SessionId,
        /// The new rule (already carrying its network-unique id).
        rule: CoordinationRule,
    },
    /// `deleteRule(i, j, id)` notification to the head node.
    DeleteRule {
        /// The session the change joins.
        session: SessionId,
        /// The rule to drop.
        rule: RuleId,
    },

    // ---------------- statistics ----------------
    /// A peer's statistics, sent to the super-peer on `CollectStats`.
    StatsReport {
        /// The peer's counters.
        stats: PeerStats,
    },
}

impl ProtocolMsg {
    /// True iff the message belongs to an eager update's diffusing
    /// computation and must be tracked by Dijkstra–Scholten. Resync
    /// traffic is deliberately control-plane: it flows outside any
    /// session's detector (a restarted peer has no Dijkstra–Scholten
    /// state), and the driver's post-stall re-drive is what re-certifies
    /// closure.
    pub fn is_basic(&self) -> bool {
        matches!(
            self,
            ProtocolMsg::UpdateFlood { .. }
                | ProtocolMsg::Query { .. }
                | ProtocolMsg::Answer { .. }
                | ProtocolMsg::Unsubscribe { .. }
                | ProtocolMsg::AddRule { .. }
                | ProtocolMsg::DeleteRule { .. }
        )
    }

    /// The update session the message belongs to, if any. Session-tagged
    /// messages are routed to the per-session state table at the receiving
    /// peer; the rest is session-less control or discovery traffic.
    pub fn session(&self) -> Option<SessionId> {
        match self {
            ProtocolMsg::StartUpdate { session }
            | ProtocolMsg::StartScopedUpdate { session }
            | ProtocolMsg::UpdateFlood { session }
            | ProtocolMsg::Query { session, .. }
            | ProtocolMsg::Answer { session, .. }
            | ProtocolMsg::Unsubscribe { session, .. }
            | ProtocolMsg::Fixpoint { session, .. }
            | ProtocolMsg::Ack { session }
            | ProtocolMsg::RoundStart { session, .. }
            | ProtocolMsg::RoundEcho { session, .. }
            | ProtocolMsg::WaveQuery { session, .. }
            | ProtocolMsg::WaveAnswer { session, .. }
            | ProtocolMsg::WaveAnswerDelta { session, .. }
            | ProtocolMsg::RoundsClosed { session, .. }
            | ProtocolMsg::ResyncRequest { session, .. }
            | ProtocolMsg::ResyncAnswer { session, .. }
            | ProtocolMsg::ResumeRounds { session, .. }
            | ProtocolMsg::AddRule { session, .. }
            | ProtocolMsg::DeleteRule { session, .. } => Some(*session),
            _ => None,
        }
    }
}

impl Wire for ProtocolMsg {
    /// The **real** encoded size of the message — the exact byte length of
    /// its serialized form. This replaced the old per-variant field-count
    /// estimates (`24 + atoms*16`-style), so byte accounting and the
    /// bandwidth-aware latency model see what a transport would carry:
    /// interned rows cost 4-byte symbol ids, and dictionary deltas pay for
    /// each string exactly once per pipe.
    fn wire_size(&self) -> usize {
        p2p_net::encoded_wire_size(self)
    }

    /// Codec-true size: JSON length under [`p2p_net::Codec::Json`], the
    /// specialized binary encoding's length under
    /// [`p2p_net::Codec::Binary`]. Either way the measurement is one
    /// encode pass; the runtimes call this once per send.
    fn wire_size_with(&self, codec: p2p_net::Codec) -> usize {
        match codec {
            p2p_net::Codec::Json => self.wire_size(),
            p2p_net::Codec::Binary => crate::codec::encoded_msg_len(self),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            ProtocolMsg::StartDiscovery => "StartDiscovery",
            ProtocolMsg::StartUpdate { .. } => "StartUpdate",
            ProtocolMsg::StartScopedUpdate { .. } => "StartScopedUpdate",
            ProtocolMsg::ApplyChange { .. } => "ApplyChange",
            ProtocolMsg::CollectStats => "CollectStats",
            ProtocolMsg::ResetStats => "ResetStats",
            ProtocolMsg::BroadcastRules { .. } => "BroadcastRules",
            ProtocolMsg::RequestNodes { .. } => "requestNodes",
            ProtocolMsg::DiscoveryAnswer { .. } => "processAnswer",
            ProtocolMsg::DiscoveryClosed => "DiscoveryClosed",
            ProtocolMsg::UpdateFlood { .. } => "UpdateFlood",
            ProtocolMsg::Query { .. } => "Query",
            ProtocolMsg::Answer { .. } => "Answer",
            ProtocolMsg::Unsubscribe { .. } => "Unsubscribe",
            ProtocolMsg::Fixpoint { .. } => "Fixpoint",
            ProtocolMsg::Ack { .. } => "Ack",
            ProtocolMsg::RoundStart { .. } => "RoundStart",
            ProtocolMsg::RoundEcho { .. } => "RoundEcho",
            ProtocolMsg::WaveQuery { .. } => "WaveQuery",
            ProtocolMsg::WaveAnswer { .. } => "WaveAnswer",
            ProtocolMsg::WaveAnswerDelta { .. } => "WaveAnswerDelta",
            ProtocolMsg::RoundsClosed { .. } => "RoundsClosed",
            ProtocolMsg::ResyncRequest { .. } => "ResyncRequest",
            ProtocolMsg::ResyncAnswer { .. } => "ResyncAnswer",
            ProtocolMsg::ResumeRounds { .. } => "ResumeRounds",
            ProtocolMsg::AddRule { .. } => "addRule",
            ProtocolMsg::DeleteRule { .. } => "deleteRule",
            ProtocolMsg::StatsReport { .. } => "StatsReport",
        }
    }

    /// Per-session traffic attribution for the transport layer's traces and
    /// counters.
    fn session(&self) -> Option<SessionId> {
        ProtocolMsg::session(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_relational::Val;

    fn sid(epoch: u64) -> SessionId {
        SessionId::new(NodeId(0), epoch)
    }

    #[test]
    fn basic_classification() {
        assert!(ProtocolMsg::UpdateFlood { session: sid(1) }.is_basic());
        assert!(!ProtocolMsg::Ack { session: sid(1) }.is_basic());
        assert!(!ProtocolMsg::Fixpoint {
            session: sid(1),
            generation: 0
        }
        .is_basic());
        assert!(!ProtocolMsg::RequestNodes { owner: NodeId(0) }.is_basic());
        assert!(!ProtocolMsg::RoundStart {
            session: sid(1),
            round: 1
        }
        .is_basic());
    }

    #[test]
    fn session_tags_cover_all_update_traffic() {
        assert_eq!(
            ProtocolMsg::UpdateFlood { session: sid(3) }.session(),
            Some(sid(3))
        );
        assert_eq!(ProtocolMsg::Ack { session: sid(2) }.session(), Some(sid(2)));
        assert_eq!(
            ProtocolMsg::RoundEcho {
                session: sid(4),
                round: 1,
                dirty: false
            }
            .session(),
            Some(sid(4))
        );
        assert_eq!(ProtocolMsg::StartDiscovery.session(), None);
        assert_eq!(ProtocolMsg::CollectStats.session(), None);
        // The Wire impl exposes the same attribution to the runtimes.
        assert_eq!(
            Wire::session(&ProtocolMsg::UpdateFlood { session: sid(3) }),
            Some(sid(3))
        );
    }

    #[test]
    fn answer_size_scales_with_rows() {
        let empty = ProtocolMsg::Answer {
            session: sid(1),
            rule: RuleId(0),
            rows: AnswerRows::default(),
            complete: false,
            reopen: false,
        };
        let full = ProtocolMsg::Answer {
            session: sid(1),
            rule: RuleId(0),
            rows: AnswerRows {
                vars: vec![Arc::from("X")],
                rows: (0..10).map(|i| Tuple::new(vec![Val::Int(i)])).collect(),
                null_depths: vec![],
                marks: BTreeMap::new(),
                dict: vec![],
            },
            complete: false,
            reopen: false,
        };
        assert!(full.wire_size() > empty.wire_size() + 80);
    }

    #[test]
    fn wire_size_is_the_exact_encoded_length() {
        let msg = ProtocolMsg::Answer {
            session: sid(3),
            rule: RuleId(1),
            rows: AnswerRows {
                vars: vec![Arc::from("X")],
                rows: vec![Tuple::new(vec![Val::str("wire-exact")])],
                null_depths: vec![(NullId::new(1, 2), 3)],
                marks: BTreeMap::new(),
                dict: vec![(
                    Val::str("wire-exact").as_sym().unwrap(),
                    Arc::from("wire-exact"),
                )],
            },
            complete: true,
            reopen: false,
        };
        assert_eq!(msg.wire_size(), serde_json::to_string(&msg).unwrap().len());
    }

    #[test]
    fn dict_strings_cost_bytes_once_rows_cost_ids() {
        let row = || Tuple::new(vec![Val::str("a-rather-long-shared-constant")]);
        let with_dict = ProtocolMsg::WaveAnswer {
            session: sid(1),
            round: 1,
            rule: RuleId(0),
            rows: AnswerRows {
                vars: vec![Arc::from("X")],
                rows: vec![row()],
                null_depths: vec![],
                marks: BTreeMap::new(),
                dict: vec![(
                    row().0[0].as_sym().unwrap(),
                    Arc::from("a-rather-long-shared-constant"),
                )],
            },
        };
        let without_dict = ProtocolMsg::WaveAnswer {
            session: sid(1),
            round: 1,
            rule: RuleId(0),
            rows: AnswerRows {
                vars: vec![Arc::from("X")],
                rows: vec![row()],
                null_depths: vec![],
                marks: BTreeMap::new(),
                dict: vec![],
            },
        };
        // First use pays the string; later rows carry only the 4-byte id.
        assert!(with_dict.wire_size() > without_dict.wire_size() + 29);
    }

    #[test]
    fn kinds_match_paper_names() {
        assert_eq!(
            ProtocolMsg::RequestNodes { owner: NodeId(0) }.kind(),
            "requestNodes"
        );
        assert_eq!(
            ProtocolMsg::DiscoveryAnswer {
                owner: NodeId(0),
                edges: BTreeSet::new(),
                closed: false,
                finished: false
            }
            .kind(),
            "processAnswer"
        );
    }
}
