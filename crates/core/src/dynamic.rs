//! Dynamic network changes (Section 4 of the paper).
//!
//! A network change is a sequence of atomic `addLink` / `deleteLink`
//! operations (Definition 8). The head node of the affected rule is notified
//! (`addRule` / `deleteRule`); the update algorithm must terminate for any
//! finite change (Theorem 2) with a result that is **sound** w.r.t. the
//! all-adds-no-deletes network and **complete** w.r.t. the
//! deletes-first-no-adds network (Definition 9). The envelope functions here
//! compute those two reference networks so tests and experiments can verify
//! the sandwich.

use crate::rule::{CoordinationRule, RuleId, RuleSet};
use p2p_net::SimTime;
use p2p_topology::NodeId;
use serde::{Deserialize, Serialize};

/// One atomic change operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChangeOp {
    /// `addLink(i, j, rule, id)`: a new coordination rule appears. The rule
    /// value carries head node, body node(s) and its network-unique id.
    AddLink {
        /// The rule being added.
        rule: CoordinationRule,
    },
    /// `deleteLink(i, j, id)`: the rule with this id disappears. The head
    /// node is carried so the super-peer can route the `deleteRule`
    /// notification (the paper notifies "the node i which will be unable to
    /// fetch data by this rule").
    DeleteLink {
        /// Id of the rule being removed.
        rule: RuleId,
        /// The rule's head node (notification recipient).
        head: NodeId,
    },
}

impl ChangeOp {
    /// Serialized size — the exact encoded byte length.
    pub fn wire_size(&self) -> usize {
        p2p_net::encoded_wire_size(self)
    }
}

/// A change scheduled at a virtual time during the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledChange {
    /// When the change hits the network.
    pub at: SimTime,
    /// The operation.
    pub op: ChangeOp,
}

/// A finite change script (Definition 8.2), ordered by time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChangeScript {
    ops: Vec<ScheduledChange>,
}

impl ChangeScript {
    /// Empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an operation at the given time (times must be non-decreasing;
    /// out-of-order pushes are sorted on read).
    pub fn push(&mut self, at: SimTime, op: ChangeOp) {
        self.ops.push(ScheduledChange { at, op });
    }

    /// Operations sorted by time (stable: pushes at equal times keep order).
    pub fn sorted(&self) -> Vec<ScheduledChange> {
        let mut v = self.ops.clone();
        v.sort_by_key(|c| c.at);
        v
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True iff there is no operation.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Definition 9's **upper** reference network: all `addLink`s applied (as if
/// before the run), no `deleteLink` applied. The distributed result must be
/// *contained in* the fix-point of this network (soundness).
pub fn upper_reference(initial: &RuleSet, script: &ChangeScript) -> RuleSet {
    let mut rules = initial.clone();
    for c in script.sorted() {
        if let ChangeOp::AddLink { rule } = c.op {
            // Re-add under a fresh registry id but keep the rule identity.
            let mut r = rule.clone();
            r.name = std::sync::Arc::from(format!("{}@upper", rule.name));
            let _ = rules.add(r);
        }
    }
    rules
}

/// Definition 9's **lower** reference network: all `deleteLink`s applied
/// first, no `addLink` applied. The distributed result must *contain* the
/// fix-point of this network (completeness).
pub fn lower_reference(initial: &RuleSet, script: &ChangeScript) -> RuleSet {
    let mut rules = initial.clone();
    for c in script.sorted() {
        if let ChangeOp::DeleteLink { rule, .. } = c.op {
            rules.remove(rule);
        }
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::CoordinationRule;
    use p2p_topology::NodeId;

    fn resolve(s: &str) -> Option<NodeId> {
        match s {
            "A" => Some(NodeId(0)),
            "B" => Some(NodeId(1)),
            "C" => Some(NodeId(2)),
            _ => None,
        }
    }

    fn rule(name: &str, text: &str) -> CoordinationRule {
        CoordinationRule::parse(name, text, None, &resolve).unwrap()
    }

    #[test]
    fn script_sorts_by_time() {
        let mut s = ChangeScript::new();
        s.push(
            SimTime::from_millis(10),
            ChangeOp::DeleteLink {
                rule: RuleId(0),
                head: NodeId(0),
            },
        );
        s.push(
            SimTime::from_millis(5),
            ChangeOp::AddLink {
                rule: rule("x", "B:b(X,Y) => A:a(X,Y)"),
            },
        );
        let sorted = s.sorted();
        assert_eq!(sorted[0].at, SimTime::from_millis(5));
        assert_eq!(sorted[1].at, SimTime::from_millis(10));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn references_apply_the_right_halves() {
        let mut initial = RuleSet::new();
        let r0 = initial.add(rule("r0", "B:b(X,Y) => A:a(X,Y)")).unwrap();
        let mut script = ChangeScript::new();
        script.push(
            SimTime::from_millis(1),
            ChangeOp::AddLink {
                rule: rule("r1", "C:c(X,Y) => A:a(X,Y)"),
            },
        );
        script.push(
            SimTime::from_millis(2),
            ChangeOp::DeleteLink {
                rule: r0,
                head: NodeId(0),
            },
        );

        let upper = upper_reference(&initial, &script);
        // Upper: r0 kept (no deletes), r1 added.
        assert_eq!(upper.len(), 2);

        let lower = lower_reference(&initial, &script);
        // Lower: r0 deleted, r1 not added.
        assert_eq!(lower.len(), 0);
    }
}
