//! Per-peer statistics — the application half of the paper's "statistical
//! module" (Section 5): executed queries and updates, per-query duplicate
//! counts due to paths and loops, inserted tuples, data volumes; resettable
//! and collectable by the super-peer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How a node's update state reached `closed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ClosedBy {
    /// Not closed (yet).
    #[default]
    Open,
    /// All coordination rules' body nodes reported final data (the paper's
    /// per-rule `flag` criterion) — happens bottom-up on acyclic parts.
    RulesFlags,
    /// The super-peer's termination broadcast (fix-point detected globally —
    /// stands in for the paper's maximal-dependency-path flags on cyclic
    /// parts).
    RootBroadcast,
    /// A clean synchronous round completed (rounds mode).
    CleanRound,
}

/// Counters kept by every peer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerStats {
    /// Queries received (including re-deliveries on other paths).
    pub queries_received: u64,
    /// Queries received for a `(rule, owner)` pair already being served —
    /// the paper's "number of queries received … for the same original
    /// query (due to different paths and loops)".
    pub duplicate_queries: u64,
    /// Queries sent to acquaintances.
    pub queries_sent: u64,
    /// Answers sent (initial + delta re-answers).
    pub answers_sent: u64,
    /// Answers received.
    pub answers_received: u64,
    /// Answer rows shipped out (tuple count).
    pub rows_shipped: u64,
    /// Delta answers sent (`WaveAnswerDelta` in rounds mode; watermark-based
    /// delta re-answers in eager mode). Subset of `answers_sent`.
    pub delta_answers_sent: u64,
    /// Rows a **full re-ship** (`delta_waves = false` in rounds mode,
    /// `delta_optimization = false` in eager mode) would have re-sent but a
    /// delta answer did not, approximated by the rows already shipped on
    /// that subscription. In eager mode with the delta optimization already
    /// on, the wire traffic is unchanged and this measures the rows whose
    /// *re-evaluation* the watermark skipped.
    pub rows_saved: u64,
    /// Empty acknowledgements sent for wave queries of already-finished
    /// rounds: pure protocol overhead, kept out of `answers_sent` /
    /// `rows_shipped` so those keep measuring useful traffic.
    pub stale_answers_sent: u64,
    /// Local conjunctive-query evaluations.
    pub local_evaluations: u64,
    /// Relation rows physically read by plan-based evaluations (suffix
    /// scans, transient-index rebuilds, candidate rows visited after an
    /// index probe). With persistent indexes on, a 1-tuple delta wave reads
    /// O(delta) rows regardless of relation size — this counter is how
    /// experiment e22 observes it.
    pub rows_scanned: u64,
    /// Persistent-index bucket probes performed by plan-based evaluations.
    pub index_probes: u64,
    /// Evaluations served by a cached compiled plan (no recompilation).
    /// Compared against `local_evaluations` this is the plan-cache hit rate;
    /// invalidated on `AddRule`/`DeleteRule` and on crash.
    pub plan_cache_hits: u64,
    /// Facts inserted into the local database by the update algorithm.
    pub tuples_inserted: u64,
    /// Labeled nulls minted for existential head variables.
    pub nulls_minted: u64,
    /// Discovery requests received.
    pub discovery_requests: u64,
    /// Discovery answers sent.
    pub discovery_answers: u64,
    /// Times this node re-opened after having closed (dynamic changes).
    pub reopened: u64,
    /// Process crashes suffered (churn plan).
    pub crashes: u64,
    /// Successful recoveries from storage after a crash.
    pub recoveries: u64,
    /// Rows received through crash-recovery resync answers — the traffic it
    /// took to repair the crash, to be compared against what a full
    /// re-propagation would have shipped.
    pub resync_rows: u64,
    /// First-use dictionary entries shipped with answers: `(SymId, string)`
    /// definitions for interned constants the recipient had not seen on
    /// that pipe. Bounded by (distinct constants × pipes) for the whole
    /// run — the price of never re-shipping a string.
    pub dict_entries_sent: u64,
    /// Total encoded bytes of the answer payloads this peer shipped
    /// (interned rows + dictionary deltas) — the data-plane slice of the
    /// transport layer's byte counters. Only counted under
    /// `SystemConfig::measure_payload_bytes` (experiment e16); zero
    /// otherwise.
    pub payload_bytes: u64,
    /// What those same payloads would have cost pre-interning (strings
    /// inline in every row, no dictionary) — measured per payload at send
    /// time under `SystemConfig::measure_payload_bytes`.
    /// `payload_bytes_legacy / payload_bytes` is experiment e16's
    /// wire-shrink figure.
    pub payload_bytes_legacy: u64,
    /// What those same payloads cost under the **binary** codec (varint
    /// columnar delta blocks) — measured per payload at send time under
    /// `SystemConfig::measure_payload_bytes`. `payload_bytes /
    /// payload_bytes_binary` is experiment e18's per-payload shrink
    /// figure, independent of which codec the run actually carried.
    pub payload_bytes_binary: u64,
    /// Update sessions this peer participated in (activated a session
    /// entry for — as initiator, via flood, or via a query/wave joining it).
    pub sessions_participated: u64,
    /// Peak number of sessions simultaneously open (participating, not yet
    /// closed) at this peer — the concurrency the interleaved control plane
    /// actually reached.
    pub concurrent_peak: u64,
    /// How the node last closed.
    pub closed_by: ClosedBy,
    /// Synchronous rounds participated in (rounds mode).
    pub rounds: u64,
}

impl PeerStats {
    /// Resets every counter — the super-peer's "reset statistics at all
    /// peers" command.
    pub fn reset(&mut self) {
        *self = PeerStats::default();
    }

    /// Wire size of a stats report: the **exact** byte length of the
    /// serialized form (the old `SERIALIZED_FIELDS * 8` approximation is
    /// gone; `wire_size_is_the_serialized_length` guards the equivalence).
    pub fn wire_size(&self) -> usize {
        p2p_net::encoded_wire_size(self)
    }

    /// Merges another peer's counters (super-peer aggregation).
    pub fn merge(&mut self, other: &PeerStats) {
        self.queries_received += other.queries_received;
        self.duplicate_queries += other.duplicate_queries;
        self.queries_sent += other.queries_sent;
        self.answers_sent += other.answers_sent;
        self.answers_received += other.answers_received;
        self.rows_shipped += other.rows_shipped;
        self.delta_answers_sent += other.delta_answers_sent;
        self.rows_saved += other.rows_saved;
        self.stale_answers_sent += other.stale_answers_sent;
        self.local_evaluations += other.local_evaluations;
        self.rows_scanned += other.rows_scanned;
        self.index_probes += other.index_probes;
        self.plan_cache_hits += other.plan_cache_hits;
        self.tuples_inserted += other.tuples_inserted;
        self.nulls_minted += other.nulls_minted;
        self.discovery_requests += other.discovery_requests;
        self.discovery_answers += other.discovery_answers;
        self.reopened += other.reopened;
        self.crashes += other.crashes;
        self.recoveries += other.recoveries;
        self.resync_rows += other.resync_rows;
        self.dict_entries_sent += other.dict_entries_sent;
        self.payload_bytes += other.payload_bytes;
        self.payload_bytes_legacy += other.payload_bytes_legacy;
        self.payload_bytes_binary += other.payload_bytes_binary;
        self.sessions_participated += other.sessions_participated;
        self.concurrent_peak = self.concurrent_peak.max(other.concurrent_peak);
        self.rounds = self.rounds.max(other.rounds);
    }
}

impl fmt::Display for PeerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "q_in={} (dup={}) q_out={} a_out={} (delta={} stale={}) a_in={} rows={} saved={} evals={} scanned={} probes={} plan_hits={} ins={} nulls={} crashes={} recoveries={} resync_rows={} sessions={} peak={} closed_by={:?}",
            self.queries_received,
            self.duplicate_queries,
            self.queries_sent,
            self.answers_sent,
            self.delta_answers_sent,
            self.stale_answers_sent,
            self.answers_received,
            self.rows_shipped,
            self.rows_saved,
            self.local_evaluations,
            self.rows_scanned,
            self.index_probes,
            self.plan_cache_hits,
            self.tuples_inserted,
            self.nulls_minted,
            self.crashes,
            self.recoveries,
            self.resync_rows,
            self.sessions_participated,
            self.concurrent_peak,
            self.closed_by,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeroes() {
        let mut s = PeerStats {
            queries_received: 5,
            ..Default::default()
        };
        s.reset();
        assert_eq!(s, PeerStats::default());
    }

    #[test]
    fn wire_size_is_the_serialized_length() {
        // The report's wire size is the exact encoded length — no field
        // counting to fall out of sync with the struct. Checked both at
        // default and at a non-default state (digit widths vary).
        let dflt = PeerStats::default();
        assert_eq!(
            dflt.wire_size(),
            serde_json::to_string(&dflt).unwrap().len()
        );
        let busy = PeerStats {
            queries_received: 123_456,
            rows_shipped: u64::MAX,
            closed_by: ClosedBy::CleanRound,
            ..Default::default()
        };
        assert_eq!(
            busy.wire_size(),
            serde_json::to_string(&busy).unwrap().len()
        );
        assert_ne!(dflt.wire_size(), busy.wire_size());
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = PeerStats {
            queries_sent: 2,
            tuples_inserted: 3,
            rounds: 1,
            ..Default::default()
        };
        let b = PeerStats {
            queries_sent: 4,
            rounds: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.queries_sent, 6);
        assert_eq!(a.tuples_inserted, 3);
        assert_eq!(a.rounds, 5);
    }
}
