//! Per-peer statistics — the application half of the paper's "statistical
//! module" (Section 5): executed queries and updates, per-query duplicate
//! counts due to paths and loops, inserted tuples, data volumes; resettable
//! and collectable by the super-peer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How a node's update state reached `closed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ClosedBy {
    /// Not closed (yet).
    #[default]
    Open,
    /// All coordination rules' body nodes reported final data (the paper's
    /// per-rule `flag` criterion) — happens bottom-up on acyclic parts.
    RulesFlags,
    /// The super-peer's termination broadcast (fix-point detected globally —
    /// stands in for the paper's maximal-dependency-path flags on cyclic
    /// parts).
    RootBroadcast,
    /// A clean synchronous round completed (rounds mode).
    CleanRound,
}

/// Counters kept by every peer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerStats {
    /// Queries received (including re-deliveries on other paths).
    pub queries_received: u64,
    /// Queries received for a `(rule, owner)` pair already being served —
    /// the paper's "number of queries received … for the same original
    /// query (due to different paths and loops)".
    pub duplicate_queries: u64,
    /// Queries sent to acquaintances.
    pub queries_sent: u64,
    /// Answers sent (initial + delta re-answers).
    pub answers_sent: u64,
    /// Answers received.
    pub answers_received: u64,
    /// Answer rows shipped out (tuple count).
    pub rows_shipped: u64,
    /// Delta answers sent (`WaveAnswerDelta` in rounds mode; watermark-based
    /// delta re-answers in eager mode). Subset of `answers_sent`.
    pub delta_answers_sent: u64,
    /// Rows a **full re-ship** (`delta_waves = false` in rounds mode,
    /// `delta_optimization = false` in eager mode) would have re-sent but a
    /// delta answer did not, approximated by the rows already shipped on
    /// that subscription. In eager mode with the delta optimization already
    /// on, the wire traffic is unchanged and this measures the rows whose
    /// *re-evaluation* the watermark skipped.
    pub rows_saved: u64,
    /// Empty acknowledgements sent for wave queries of already-finished
    /// rounds: pure protocol overhead, kept out of `answers_sent` /
    /// `rows_shipped` so those keep measuring useful traffic.
    pub stale_answers_sent: u64,
    /// Local conjunctive-query evaluations.
    pub local_evaluations: u64,
    /// Facts inserted into the local database by the update algorithm.
    pub tuples_inserted: u64,
    /// Labeled nulls minted for existential head variables.
    pub nulls_minted: u64,
    /// Discovery requests received.
    pub discovery_requests: u64,
    /// Discovery answers sent.
    pub discovery_answers: u64,
    /// Times this node re-opened after having closed (dynamic changes).
    pub reopened: u64,
    /// Process crashes suffered (churn plan).
    pub crashes: u64,
    /// Successful recoveries from storage after a crash.
    pub recoveries: u64,
    /// Rows received through crash-recovery resync answers — the traffic it
    /// took to repair the crash, to be compared against what a full
    /// re-propagation would have shipped.
    pub resync_rows: u64,
    /// How the node last closed.
    pub closed_by: ClosedBy,
    /// Synchronous rounds participated in (rounds mode).
    pub rounds: u64,
}

impl PeerStats {
    /// Resets every counter — the super-peer's "reset statistics at all
    /// peers" command.
    pub fn reset(&mut self) {
        *self = PeerStats::default();
    }

    /// Number of serialized fields, kept in lockstep with the struct by the
    /// `wire_size_tracks_serialized_fields` test — add a counter without
    /// bumping this and the test fails, so new fields can't silently skew
    /// the byte accounting.
    const SERIALIZED_FIELDS: usize = 20;

    /// Wire size of a stats report message: one 8-byte word per field.
    pub fn wire_size(&self) -> usize {
        Self::SERIALIZED_FIELDS * 8
    }

    /// Merges another peer's counters (super-peer aggregation).
    pub fn merge(&mut self, other: &PeerStats) {
        self.queries_received += other.queries_received;
        self.duplicate_queries += other.duplicate_queries;
        self.queries_sent += other.queries_sent;
        self.answers_sent += other.answers_sent;
        self.answers_received += other.answers_received;
        self.rows_shipped += other.rows_shipped;
        self.delta_answers_sent += other.delta_answers_sent;
        self.rows_saved += other.rows_saved;
        self.stale_answers_sent += other.stale_answers_sent;
        self.local_evaluations += other.local_evaluations;
        self.tuples_inserted += other.tuples_inserted;
        self.nulls_minted += other.nulls_minted;
        self.discovery_requests += other.discovery_requests;
        self.discovery_answers += other.discovery_answers;
        self.reopened += other.reopened;
        self.crashes += other.crashes;
        self.recoveries += other.recoveries;
        self.resync_rows += other.resync_rows;
        self.rounds = self.rounds.max(other.rounds);
    }
}

impl fmt::Display for PeerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "q_in={} (dup={}) q_out={} a_out={} (delta={} stale={}) a_in={} rows={} saved={} evals={} ins={} nulls={} crashes={} recoveries={} resync_rows={} closed_by={:?}",
            self.queries_received,
            self.duplicate_queries,
            self.queries_sent,
            self.answers_sent,
            self.delta_answers_sent,
            self.stale_answers_sent,
            self.answers_received,
            self.rows_shipped,
            self.rows_saved,
            self.local_evaluations,
            self.tuples_inserted,
            self.nulls_minted,
            self.crashes,
            self.recoveries,
            self.resync_rows,
            self.closed_by,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeroes() {
        let mut s = PeerStats {
            queries_received: 5,
            ..Default::default()
        };
        s.reset();
        assert_eq!(s, PeerStats::default());
    }

    #[test]
    fn wire_size_tracks_serialized_fields() {
        // Derive the expected size from the serialized form instead of
        // hand-counting struct fields: every field of the flat JSON object
        // contributes one `":` marker (field values — numbers and the
        // `closed_by` variant name — never contain that sequence).
        let json = serde_json::to_string(&PeerStats::default()).unwrap();
        let fields = json.matches("\":").count();
        assert!(fields > 0, "serialization must be a flat object: {json}");
        assert_eq!(
            PeerStats::default().wire_size(),
            fields * 8,
            "PeerStats::SERIALIZED_FIELDS is out of sync with the struct \
             (serialized form: {json})"
        );
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = PeerStats {
            queries_sent: 2,
            tuples_inserted: 3,
            rounds: 1,
            ..Default::default()
        };
        let b = PeerStats {
            queries_sent: 4,
            rounds: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.queries_sent, 6);
        assert_eq!(a.tuples_inserted, 3);
        assert_eq!(a.rounds, 5);
    }
}
