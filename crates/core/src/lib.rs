//! # p2p-core
//!
//! The distributed algorithms of *"A distributed algorithm for robust data
//! sharing and updates in P2P database networks"* (Franconi, Kuper,
//! Lopatenko, Zaihrayeu — EDBT P2P&DB'04), implemented on the substrates
//! `p2p-relational` (local databases, conjunctive queries, restricted chase)
//! and `p2p-net` (deterministic simulator / threaded runtime standing in for
//! JXTA).
//!
//! ## What lives here
//!
//! * [`rule`] — coordination rules (Definition 2): conjunctive bodies spread
//!   over acquaintance nodes, conjunctive heads with existential variables;
//!   a parser for the paper's rule notation
//!   (`B:b(X,Y), B:b(X,Z), X != Z => A:a(X,Y)`); validation against node
//!   schemas; **weak-acyclicity** analysis of rule sets (the syntactic
//!   condition under which the update fix-point provably terminates).
//! * [`peer`] — the peer state machine: the **topology-discovery algorithm**
//!   (paper algorithms A1–A3) and the **distributed update algorithm**
//!   (A4–A6) in two modes:
//!   [`config::UpdateMode::Eager`] (asynchronous subscriptions + deltas,
//!   termination by Dijkstra–Scholten rooted at the super-peer) and
//!   [`config::UpdateMode::Rounds`] (the paper's synchronous alternative:
//!   repeated query/echo waves until a clean round).
//! * [`termination`] — reusable Dijkstra–Scholten diffusing-computation
//!   termination detection.
//! * [`oracle`] — the centralized global fix-point: the semantics reference
//!   every distributed run is checked against (soundness & completeness of
//!   Lemma 1, modulo null renaming).
//! * [`dynamic`] — runtime network changes: `addLink` / `deleteLink`
//!   scripts, the Definition 9 soundness/completeness envelope, Theorem 2/3
//!   machinery.
//! * [`system`] — a builder assembling nodes + rules into a runnable system
//!   on either runtime, with super-peer driving (discovery, update, change
//!   scripts, stats collection/reset, rule-file broadcast — Section 5's
//!   implementation features).
//! * [`stats`] — the per-peer half of the paper's statistical module.
//!
//! ## Quick example
//!
//! ```
//! use p2p_core::system::P2PSystemBuilder;
//! use p2p_relational::Val;
//!
//! let mut b = P2PSystemBuilder::new();
//! b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
//! b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
//! b.add_rule("r1", "B:b(X,Y) => A:a(X,Y)").unwrap();
//! b.insert(1, "b", vec![Val::Int(1), Val::Int(2)]).unwrap();
//!
//! let mut sys = b.build().unwrap();
//! let report = sys.run_update();
//! assert!(report.outcome.quiescent);
//! // Node A now answers locally: a(1,2) arrived via r1.
//! let a_db = sys.database(p2p_topology::NodeId(0)).unwrap();
//! assert_eq!(a_db.relation("a").unwrap().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod config;
pub mod dynamic;
pub mod error;
pub mod joins;
pub mod messages;
pub mod netfile;
pub mod oracle;
pub mod peer;
pub mod rule;
pub mod socket;
pub mod stats;
pub mod system;
pub mod termination;

pub use config::{Initiation, SystemConfig, UpdateMode};
pub use error::{CoreError, CoreResult};
pub use messages::ProtocolMsg;
pub use oracle::{global_fixpoint, GlobalDb};
pub use rule::{CoordinationRule, RuleId, RuleSet};
pub use system::{P2PSystem, P2PSystemBuilder, UpdateReport};
