//! Configuration of a P2P system run.

use p2p_net::SimTime;
use serde::{Deserialize, Serialize};

/// Which variant of the distributed update algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum UpdateMode {
    /// Asynchronous eager propagation (the paper's default model): queried
    /// nodes subscribe their askers and push deltas the moment local data
    /// grows; global termination detected by Dijkstra–Scholten at the
    /// super-peer; nodes additionally close early bottom-up via the paper's
    /// per-rule completion flags. Fastest convergence, most messages.
    #[default]
    Eager,
    /// The "synchronous alternative" the paper mentions: repeated
    /// query/echo waves from the super-peer; wave *k+1* starts only if wave
    /// *k* inserted data anywhere. Fewer messages in flight, more latency.
    Rounds,
}

/// How the global update request reaches the nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Initiation {
    /// Flood the start request along pipes in both directions (Section 5:
    /// pipes exist toward rule sources *and* rule targets), so every node of
    /// the super-peer's weakly-connected component participates. This is
    /// what makes the *global* update reach nodes that nothing depends on.
    #[default]
    Flood,
    /// Strict algorithm-A4 propagation: a node starts participating when the
    /// first `Query` reaches it, so only nodes on dependency paths from the
    /// super-peer take part. Faithful to the pseudocode; used by the paper
    /// trace reproduction.
    QueryPropagation,
}

/// Knobs of one run. `Default` gives the configuration used throughout the
/// examples: eager mode, flooded initiation, delta optimization on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Update algorithm variant.
    pub mode: UpdateMode,
    /// Start-request dissemination.
    pub initiation: Initiation,
    /// When true, answers carry only rows not previously sent to that
    /// subscriber (the paper's "delta optimization … in order to minimize
    /// data transfer and duplication"). When false, every answer repeats the
    /// full current result. Message *counts* are identical; sizes differ.
    pub delta_optimization: bool,
    /// Delta-driven wave answers. When true, round-mode answering peers
    /// track a per-(requester, rule) watermark and ship only rows derived
    /// from facts inserted since their last answer
    /// ([`crate::messages::ProtocolMsg::WaveAnswerDelta`]; first contact is
    /// still a full `WaveAnswer`), while head peers cache fragment
    /// extensions across rounds and join semi-naively. In eager mode it
    /// additionally switches subscription re-answers to watermark-based
    /// delta *evaluation* (skipping the full fragment re-evaluation). When
    /// false, every wave answer re-ships the full current extension — the
    /// paper-faithful, oracle-comparable baseline.
    pub delta_waves: bool,
    /// Compiled plan cache. When true (the default), each peer compiles a
    /// body fragment's query plan (slot table, atom order, key positions,
    /// constraint schedule) once per rule and reuses it for every wave,
    /// invalidating on `AddRule`/`DeleteRule` and on crash. When false,
    /// plans are recompiled per evaluation — the `--no-plan-cache` ablation
    /// baseline.
    pub plan_cache: bool,
    /// Persistent join indexes. When true (the default), joins probe
    /// hash indexes that `p2p_relational::Relation` builds lazily per key
    /// column set and maintains incrementally on insert, so repeated
    /// evaluation cost is proportional to the delta. When false, every
    /// evaluation rebuilds a transient index over the whole relation — the
    /// legacy cost model, kept as the `--no-indexes` ablation baseline.
    pub persistent_indexes: bool,
    /// Durable peers. When true, every peer owns a `p2p_storage` write-ahead
    /// log plus snapshot store: applied insertions and processed fragment
    /// answers are logged as they happen, and a crashed peer rebuilds its
    /// pre-crash database from storage at restart, then reconciles missed
    /// traffic through the watermark-based
    /// [`crate::messages::ProtocolMsg::ResyncRequest`] protocol. When false
    /// (the default), a crash loses everything the peer ever held — the
    /// amnesia baseline.
    pub durability: bool,
    /// With durability on: WAL records between automatic snapshots
    /// (bounding recovery replay). 0 keeps only the initial snapshot.
    pub snapshot_every: u64,
    /// Wire codec for protocol messages and (with durability on) WAL /
    /// snapshot frames: JSON text by default, or the compact binary
    /// encoding of [`crate::codec`]. Netfiles and the CLI always speak
    /// JSON regardless — the codec is a transport/storage property.
    pub codec: p2p_net::Codec,
    /// Measure per-answer payload bytes (`PeerStats::payload_bytes`), the
    /// pre-interning counterfactual (`payload_bytes_legacy`), and the
    /// binary-codec size (`payload_bytes_binary`). Off by default — each
    /// measurement re-encodes the payload, which is pure overhead outside
    /// experiments e16/e18.
    pub measure_payload_bytes: bool,
    /// Require the rule set to be weakly acyclic at build time. On by
    /// default; turn off only to study the chase-depth safety valve.
    pub require_weak_acyclicity: bool,
    /// Maximum null-derivation depth for the restricted chase.
    pub max_null_depth: u32,
    /// Per-tuple local evaluation cost charged to handlers (models query
    /// processing time; drives the execution-time axis of the experiments).
    pub cost_per_tuple: SimTime,
    /// Fixed per-message handling cost.
    pub cost_per_message: SimTime,
    /// Simulator event budget (safety net). `0` means **auto**: the budget
    /// is derived from the node count at build time
    /// ([`SystemConfig::effective_max_events`]) so a 10k-peer run is not
    /// artificially halted by a flat cap sized for ring(8). Any explicit
    /// non-zero value wins.
    pub max_events: u64,
    /// Trace capacity (0 = tracing off).
    pub trace_capacity: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            mode: UpdateMode::Eager,
            initiation: Initiation::Flood,
            delta_optimization: true,
            delta_waves: true,
            plan_cache: true,
            persistent_indexes: true,
            durability: false,
            snapshot_every: 64,
            codec: p2p_net::Codec::Json,
            measure_payload_bytes: false,
            require_weak_acyclicity: true,
            max_null_depth: 64,
            cost_per_tuple: SimTime::from_micros(10),
            cost_per_message: SimTime::from_micros(50),
            max_events: 0,
            trace_capacity: 0,
        }
    }
}

impl SystemConfig {
    /// Events per node granted by the auto budget. A global update costs a
    /// roster flood + queries/answers/acks per rule plus the fix-point
    /// broadcast — well under a thousand deliveries per node in every
    /// experiment; 5000 leaves an order-of-magnitude margin for faults,
    /// churn redrives and dynamic changes.
    pub const AUTO_EVENTS_PER_NODE: u64 = 5_000;

    /// Floor of the auto budget (the old flat default, so small systems keep
    /// exactly the safety margin they always had).
    pub const AUTO_EVENTS_FLOOR: u64 = 10_000_000;

    /// The event budget a system of `nodes` peers actually runs with:
    /// an explicit non-zero [`SystemConfig::max_events`] verbatim, otherwise
    /// `max(floor, nodes × per-node share)`.
    pub fn effective_max_events(&self, nodes: usize) -> u64 {
        if self.max_events != 0 {
            self.max_events
        } else {
            Self::AUTO_EVENTS_FLOOR.max(nodes as u64 * Self::AUTO_EVENTS_PER_NODE)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_eager_flood_delta() {
        let c = SystemConfig::default();
        assert_eq!(c.mode, UpdateMode::Eager);
        assert_eq!(c.initiation, Initiation::Flood);
        assert!(c.delta_optimization);
        assert!(c.delta_waves);
        assert!(c.plan_cache);
        assert!(c.persistent_indexes);
        assert!(c.require_weak_acyclicity);
        assert_eq!(c.codec, p2p_net::Codec::Json);
    }

    #[test]
    fn event_budget_scales_with_node_count() {
        let auto = SystemConfig::default();
        assert_eq!(auto.max_events, 0, "default budget is auto");
        // Small systems keep the historical flat floor…
        assert_eq!(
            auto.effective_max_events(8),
            SystemConfig::AUTO_EVENTS_FLOOR
        );
        // …large ones grow linearly instead of being halted by it.
        assert_eq!(
            auto.effective_max_events(10_000),
            10_000 * SystemConfig::AUTO_EVENTS_PER_NODE
        );
        assert_eq!(
            auto.effective_max_events(100_000),
            100_000 * SystemConfig::AUTO_EVENTS_PER_NODE
        );
        // An explicit budget always wins, at any scale.
        let explicit = SystemConfig {
            max_events: 1_234,
            ..SystemConfig::default()
        };
        assert_eq!(explicit.effective_max_events(100_000), 1_234);
    }
}
