//! The global fix-point oracle: the centralized reference semantics.
//!
//! Computes, in one process, the least fix-point of the coordination rules
//! over all local databases — what the distributed update must converge to
//! (Lemma 1's soundness and completeness, modulo null renaming). The same
//! computation doubles as the core of the *centralized baseline* (Calvanese
//! et al. 2003 describe "only a global algorithm, that assumes a central
//! node where all computation is performed"); `p2p-baselines` wraps it with
//! message accounting.

use crate::error::{CoreError, CoreResult};
use crate::joins::{apply_rule_head, eval_part, join_parts, VarRows};
use crate::rule::RuleSet;
use p2p_relational::chase::{ChaseConfig, ChaseState};
use p2p_relational::hom::equivalent_modulo_nulls;
use p2p_relational::{Database, NullFactory};
use p2p_topology::NodeId;
use std::collections::BTreeMap;

/// A snapshot of every node's database.
#[derive(Debug, Clone)]
pub struct GlobalDb(pub BTreeMap<NodeId, Database>);

impl GlobalDb {
    /// Access one node's database.
    pub fn node(&self, id: NodeId) -> Option<&Database> {
        self.0.get(&id)
    }

    /// Total tuples across the network.
    pub fn total_tuples(&self) -> usize {
        self.0.values().map(Database::total_tuples).sum()
    }

    /// Node-wise homomorphic equivalence — the correctness notion for
    /// comparing a distributed run against the oracle (labeled nulls are
    /// minted by different parties, so only equivalence up to null renaming
    /// is meaningful).
    pub fn equivalent(&self, other: &GlobalDb) -> bool {
        if self.0.len() != other.0.len() {
            return false;
        }
        self.0.iter().all(|(id, db)| {
            other
                .0
                .get(id)
                .map(|o| equivalent_modulo_nulls(db, o))
                .unwrap_or(false)
        })
    }
}

/// Node id baked into oracle-minted nulls; reserved so oracle nulls can
/// never collide with peer-minted ones.
pub const ORACLE_NULL_NODE: u32 = u32::MAX - 1;

/// Computes the global fix-point of `rules` over the given databases.
///
/// Round-robin chaotic iteration: apply every rule against the current
/// state until a full pass inserts nothing. For weakly-acyclic rule sets
/// this terminates; otherwise the chase-depth valve aborts with
/// [`CoreError::Relational`].
pub fn global_fixpoint(
    databases: &BTreeMap<NodeId, Database>,
    rules: &RuleSet,
    max_null_depth: u32,
) -> CoreResult<GlobalDb> {
    let mut dbs = databases.clone();
    let mut nulls = NullFactory::new(ORACLE_NULL_NODE);
    let mut chase = ChaseState::new();
    let cfg = ChaseConfig { max_null_depth };

    loop {
        let mut inserted_any = false;
        for rule in rules.iter() {
            // Evaluate every fragment against its node…
            let mut parts = Vec::with_capacity(rule.parts.len());
            let mut missing_node = false;
            for part in &rule.parts {
                let Some(db) = dbs.get(&part.node) else {
                    missing_node = true;
                    break;
                };
                let rows = eval_part(part, db)?;
                parts.push(VarRows {
                    vars: part.vars.clone(),
                    rows,
                });
            }
            if missing_node {
                continue;
            }
            // …join at the head and chase.
            let bindings = join_parts(&parts, &rule.join_constraints);
            let Some(head_db) = dbs.get_mut(&rule.head_node) else {
                return Err(CoreError::UnknownNode(rule.head_node.to_string()));
            };
            let outcome = apply_rule_head(rule, &bindings, head_db, &mut nulls, &mut chase, &cfg)?;
            if !outcome.is_empty() {
                inserted_any = true;
            }
        }
        if !inserted_any {
            return Ok(GlobalDb(dbs));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{paper_example_rules, paper_example_schema, CoordinationRule};
    use p2p_relational::{DatabaseSchema, Val};

    fn resolve(s: &str) -> Option<NodeId> {
        match s {
            "A" => Some(NodeId(0)),
            "B" => Some(NodeId(1)),
            "C" => Some(NodeId(2)),
            _ => None,
        }
    }

    fn two_node_dbs() -> BTreeMap<NodeId, Database> {
        let mut dbs = BTreeMap::new();
        dbs.insert(
            NodeId(0),
            Database::new(DatabaseSchema::parse("a(x: int, y: int).").unwrap()),
        );
        let mut b = Database::new(DatabaseSchema::parse("b(x: int, y: int).").unwrap());
        b.insert_values("b", vec![Val::Int(1), Val::Int(2)])
            .unwrap();
        b.insert_values("b", vec![Val::Int(2), Val::Int(3)])
            .unwrap();
        dbs.insert(NodeId(1), b);
        dbs
    }

    #[test]
    fn copy_rule_fixpoint() {
        let mut rules = RuleSet::new();
        rules
            .add(CoordinationRule::parse("r", "B:b(X,Y) => A:a(X,Y)", None, &resolve).unwrap())
            .unwrap();
        let fp = global_fixpoint(&two_node_dbs(), &rules, 64).unwrap();
        assert_eq!(fp.node(NodeId(0)).unwrap().relation("a").unwrap().len(), 2);
        // Source unchanged.
        assert_eq!(fp.node(NodeId(1)).unwrap().relation("b").unwrap().len(), 2);
    }

    #[test]
    fn cyclic_rules_reach_fixpoint() {
        // A:a ⇄ B:b with copy rules both ways plus a transitive rule at B:
        // the loop must saturate and stop.
        let mut rules = RuleSet::new();
        rules
            .add(CoordinationRule::parse("r1", "B:b(X,Y) => A:a(X,Y)", None, &resolve).unwrap())
            .unwrap();
        rules
            .add(CoordinationRule::parse("r2", "A:a(X,Y) => B:b(X,Y)", None, &resolve).unwrap())
            .unwrap();
        let fp = global_fixpoint(&two_node_dbs(), &rules, 64).unwrap();
        // Both sides end with the same 2 tuples.
        assert_eq!(fp.node(NodeId(0)).unwrap().relation("a").unwrap().len(), 2);
        assert_eq!(fp.node(NodeId(1)).unwrap().relation("b").unwrap().len(), 2);
    }

    #[test]
    fn paper_example_fixpoint_saturates() {
        let rules = paper_example_rules();
        let mut dbs: BTreeMap<NodeId, Database> = (0..5)
            .map(|i| (NodeId(i), Database::new(paper_example_schema(NodeId(i)))))
            .collect();
        // Seed E with a small chain.
        let e = dbs.get_mut(&NodeId(4)).unwrap();
        for (x, y) in [(1, 2), (2, 3), (3, 1)] {
            e.insert_values("e", vec![Val::Int(x), Val::Int(y)])
                .unwrap();
        }
        let fp = global_fixpoint(&dbs, &rules, 64).unwrap();
        // r1 copies e into b.
        assert!(fp.node(NodeId(1)).unwrap().relation("b").unwrap().len() >= 3);
        // r2 derives c from b-chains; the 3-cycle has chains everywhere.
        assert!(!fp
            .node(NodeId(2))
            .unwrap()
            .relation("c")
            .unwrap()
            .is_empty());
        // r4 needs b(X,Y), b(X,Z), X≠Z … the cycle saturates b enough.
        assert!(!fp
            .node(NodeId(0))
            .unwrap()
            .relation("a")
            .unwrap()
            .is_empty());
        // r6 populates d from a.
        assert!(!fp
            .node(NodeId(3))
            .unwrap()
            .relation("d")
            .unwrap()
            .is_empty());
        // Deterministic: running again yields an equivalent state.
        let fp2 = global_fixpoint(&dbs, &rules, 64).unwrap();
        assert!(fp.equivalent(&fp2));
    }

    #[test]
    fn existential_rule_invents_once() {
        let mut rules = RuleSet::new();
        rules
            .add(CoordinationRule::parse("r", "B:b(X,Y) => A:a(X,Z)", None, &resolve).unwrap())
            .unwrap();
        let fp = global_fixpoint(&two_node_dbs(), &rules, 64).unwrap();
        let a = fp.node(NodeId(0)).unwrap().relation("a").unwrap();
        // One invention per distinct X: X ∈ {1, 2}.
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|t| t[1].is_null()));
    }

    #[test]
    fn depth_valve_aborts_diverging_sets() {
        let mut rules = RuleSet::new();
        rules
            .add(CoordinationRule::parse("f", "A:a(X,Y) => B:b(Y,Z)", None, &resolve).unwrap())
            .unwrap();
        rules
            .add(CoordinationRule::parse("g", "B:b(X,Y) => A:a(Y,Z)", None, &resolve).unwrap())
            .unwrap();
        let mut dbs = two_node_dbs();
        dbs.get_mut(&NodeId(0))
            .unwrap()
            .insert_values("a", vec![Val::Int(1), Val::Int(2)])
            .unwrap();
        let err = global_fixpoint(&dbs, &rules, 8).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Relational(p2p_relational::Error::ChaseDepthExceeded { .. })
        ));
    }

    #[test]
    fn equivalence_detects_differences() {
        let mut rules = RuleSet::new();
        rules
            .add(CoordinationRule::parse("r", "B:b(X,Y) => A:a(X,Y)", None, &resolve).unwrap())
            .unwrap();
        let fp = global_fixpoint(&two_node_dbs(), &rules, 64).unwrap();
        let empty = GlobalDb(
            two_node_dbs(), // without running rules: A empty
        );
        assert!(!fp.equivalent(&empty));
        assert!(fp.equivalent(&fp.clone()));
    }
}
