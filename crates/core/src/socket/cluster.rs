//! The multi-process cluster launcher behind `p2pdb launch`.
//!
//! One `p2pdb serve` child process per declared node, all on loopback:
//! pick free ports, spawn the fleet, wait for every control socket, inject
//! the session's `StartUpdate` at the super-peer, poll the protocol's own
//! fix-point signal (`session_closed` at every node — the cross-process
//! reading of the Dijkstra–Scholten + completion-flag termination), then
//! collect per-node databases and counters, shut everyone down, and
//! optionally verify the distributed result against the in-process
//! simulator and the centralized oracle on the same netfile.
//!
//! Children are reaped on **every** exit path: the [`Fleet`] guard kills
//! and waits whatever is still alive when it drops, so a failed or timed
//! out launch leaves no orphaned `serve` processes listening.

use super::Controller;
use crate::error::{CoreError, CoreResult};
use crate::messages::ProtocolMsg;
use crate::netfile::NetworkFile;
use crate::oracle::GlobalDb;
use crate::stats::PeerStats;
use p2p_net::{Codec, SessionId};
use p2p_topology::NodeId;
use p2p_transport::TransportStats;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Per-node counters collected before shutdown.
#[derive(Debug, Clone)]
pub struct NodeCounters {
    /// Protocol counters (queries, answers, rows, inserts …).
    pub peer: PeerStats,
    /// Socket counters (frames, bytes, connects, reconnects).
    pub transport: TransportStats,
    /// Structured errors the peer recorded.
    pub errors: Vec<String>,
}

/// Configuration of one launch.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Path of the network file (passed through to every child).
    pub netfile_path: PathBuf,
    /// The `p2pdb` binary to spawn (`current_exe` in the CLI).
    pub bin: PathBuf,
    /// Wire codec for the whole cluster.
    pub codec: Codec,
    /// Durable state root; `Some` runs every child with
    /// `--durable --state-dir <dir>`.
    pub state_dir: Option<PathBuf>,
    /// Overall deadline: spawn, converge, collect and shut down within
    /// this budget or fail (children still get reaped).
    pub timeout: Duration,
    /// Verify the cluster result against the in-process simulator and the
    /// centralized fix-point oracle on the same netfile.
    pub verify: bool,
}

impl ClusterConfig {
    /// Defaults: JSON codec, volatile, 60 s budget, verification on.
    pub fn new(netfile_path: PathBuf, bin: PathBuf) -> Self {
        ClusterConfig {
            netfile_path,
            bin,
            codec: Codec::Json,
            state_dir: None,
            timeout: Duration::from_secs(60),
            verify: true,
        }
    }
}

/// What a successful launch reports.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// The session that was driven to fix-point.
    pub session: SessionId,
    /// Spawned child PIDs, in node order.
    pub pids: Vec<(u32, u32)>,
    /// Wall-clock from first spawn to all-closed.
    pub converge_wall: Duration,
    /// Per-node counters.
    pub counters: BTreeMap<u32, NodeCounters>,
    /// Cluster-wide transport totals.
    pub transport_total: TransportStats,
    /// The collected global database (every node's relations, remapped
    /// into this process's symbol space).
    pub db: GlobalDb,
    /// `Some(true)` if verification ran and both the simulator and the
    /// oracle agree tuple-for-tuple (modulo null renaming); `None` when
    /// verification was off.
    pub verified: Option<bool>,
    /// Messages the in-process simulator delivered on the same workload
    /// (only when verification ran).
    pub sim_messages: u64,
    /// Bytes the in-process simulator shipped on the same workload.
    pub sim_bytes: u64,
}

/// Child processes with kill-on-drop semantics.
struct Fleet {
    children: Vec<(u32, Child)>,
}

impl Fleet {
    /// Waits for `child` to exit, killing it at the deadline.
    fn reap_one(node: u32, child: &mut Child, deadline: Instant) -> Option<String> {
        loop {
            match child.try_wait() {
                Ok(Some(status)) if status.success() => return None,
                Ok(Some(status)) => {
                    return Some(format!("node {node} exited with {status}"));
                }
                Ok(None) => {
                    if Instant::now() >= deadline {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Some(format!("node {node} did not exit in time; killed"));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Some(format!("node {node}: wait failed: {e}")),
            }
        }
    }

    /// Graceful path: children were asked to shut down; give them until
    /// `deadline`, then force. Returns complaints (empty = all clean).
    fn reap_all(&mut self, deadline: Instant) -> Vec<String> {
        let mut complaints = Vec::new();
        for (node, child) in &mut self.children {
            if let Some(c) = Self::reap_one(*node, child, deadline) {
                complaints.push(c);
            }
        }
        self.children.clear();
        complaints
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        // Failure path: whatever is still running gets killed and waited —
        // no orphaned `serve` processes after a failed launch.
        for (_, child) in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns the whole network as child processes, drives one global update
/// session to fix-point, and collects the result. `progress` receives
/// human-readable one-liners as the launch advances (the CLI prints them;
/// tests parse the `pid` lines to assert reaping).
pub fn launch_cluster(
    cfg: &ClusterConfig,
    progress: &mut dyn FnMut(String),
) -> CoreResult<ClusterOutcome> {
    let text = std::fs::read_to_string(&cfg.netfile_path)
        .map_err(|e| CoreError::Transport(format!("read {}: {e}", cfg.netfile_path.display())))?;
    let netfile = NetworkFile::from_json(&text)?;
    if netfile.nodes.is_empty() {
        return Err(CoreError::Transport(
            "network file declares no nodes".into(),
        ));
    }
    let deadline = Instant::now() + cfg.timeout;
    let started = Instant::now();

    // Reserve one loopback port per node: bind :0, remember, release.
    let mut addrs: BTreeMap<u32, SocketAddr> = BTreeMap::new();
    for node in &netfile.nodes {
        let probe = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| CoreError::Transport(format!("reserve port: {e}")))?;
        let addr = probe
            .local_addr()
            .map_err(|e| CoreError::Transport(format!("reserve port: {e}")))?;
        addrs.insert(node.id, addr);
    }

    // Spawn the fleet.
    let mut fleet = Fleet {
        children: Vec::with_capacity(netfile.nodes.len()),
    };
    let mut pids = Vec::new();
    for node in &netfile.nodes {
        let mut cmd = Command::new(&cfg.bin);
        cmd.arg("serve")
            .arg(&cfg.netfile_path)
            .arg("--node")
            .arg(node.id.to_string())
            .arg("--listen")
            .arg(addrs[&node.id].to_string())
            .arg("--codec")
            .arg(cfg.codec.name());
        for (peer, addr) in &addrs {
            if *peer != node.id {
                cmd.arg("--peer").arg(format!("{peer}={addr}"));
            }
        }
        if let Some(dir) = &cfg.state_dir {
            cmd.arg("--durable").arg("--state-dir").arg(dir);
        }
        cmd.stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        let child = cmd
            .spawn()
            .map_err(|e| CoreError::Transport(format!("spawn {} serve: {e}", cfg.bin.display())))?;
        let pid = child.id();
        pids.push((node.id, pid));
        progress(format!(
            "spawned node {} pid {} listening on {}",
            node.id, pid, addrs[&node.id]
        ));
        fleet.children.push((node.id, child));
    }

    // Wait for every control socket, then drive the session.
    let outcome = drive(cfg, &netfile, &addrs, deadline, started, progress);

    match outcome {
        Ok((session, converge_wall, counters, db)) => {
            let complaints = fleet.reap_all(Instant::now() + Duration::from_secs(10));
            if !complaints.is_empty() {
                return Err(CoreError::Transport(complaints.join("; ")));
            }
            progress(format!("all {} children exited cleanly", pids.len()));

            let mut transport_total = TransportStats::default();
            for c in counters.values() {
                transport_total.merge(&c.transport);
            }

            let (verified, sim_messages, sim_bytes) = if cfg.verify {
                let (ok, msgs, bytes) = verify_against_sim(&netfile, cfg.codec, &db)?;
                (Some(ok), msgs, bytes)
            } else {
                (None, 0, 0)
            };

            Ok(ClusterOutcome {
                session,
                pids,
                converge_wall,
                counters,
                transport_total,
                db,
                verified,
                sim_messages,
                sim_bytes,
            })
        }
        // `fleet` drops here on the error path: children killed + waited.
        Err(e) => Err(e),
    }
}

/// Connect, inject, poll to fix-point, collect. Split out so every `?`
/// inside still runs the caller's fleet cleanup.
fn drive(
    cfg: &ClusterConfig,
    netfile: &NetworkFile,
    addrs: &BTreeMap<u32, SocketAddr>,
    deadline: Instant,
    started: Instant,
    progress: &mut dyn FnMut(String),
) -> CoreResult<(SessionId, Duration, BTreeMap<u32, NodeCounters>, GlobalDb)> {
    let mut controllers: BTreeMap<u32, Controller> = BTreeMap::new();
    for (&node, &addr) in addrs {
        controllers.insert(node, Controller::connect(addr, deadline)?);
    }
    progress(format!("all {} control sockets up", controllers.len()));

    // One global update session rooted at the super-peer, epoch 1 — the
    // driver-assigned id every process can predict.
    let root = netfile.super_peer;
    let session = SessionId::new(NodeId(root), 1);
    controllers
        .get_mut(&root)
        .ok_or_else(|| CoreError::UnknownNode(root.to_string()))?
        .inject(root, ProtocolMsg::StartUpdate { session })?;

    // The cluster's own termination signal: every node reports the session
    // closed (or retired). Flood initiation reaches the whole connected
    // component, so this is exactly the in-process all-closed condition.
    loop {
        let mut all = true;
        for ctl in controllers.values_mut() {
            if !ctl.session_closed(session)? {
                all = false;
                break;
            }
        }
        if all {
            break;
        }
        if Instant::now() >= deadline {
            return Err(CoreError::Transport(format!(
                "cluster did not reach fix-point within {:?}",
                cfg.timeout
            )));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let converge_wall = started.elapsed();
    progress(format!(
        "session {session:?} closed at all {} nodes after {:.1?}",
        controllers.len(),
        converge_wall
    ));

    // Collect databases and counters, then shut everyone down.
    let mut counters = BTreeMap::new();
    let mut db = BTreeMap::new();
    for (&node, ctl) in &mut controllers {
        db.insert(NodeId(node), ctl.snapshot()?);
        let (peer, transport, errors) = ctl.stats()?;
        counters.insert(
            node,
            NodeCounters {
                peer,
                transport,
                errors,
            },
        );
    }
    for ctl in controllers.values_mut() {
        ctl.shutdown()?;
    }
    Ok((session, converge_wall, counters, GlobalDb(db)))
}

/// Runs the same netfile through the in-process simulator and the
/// centralized oracle; true iff the cluster's database is tuple-identical
/// (modulo null renaming) to both.
fn verify_against_sim(
    netfile: &NetworkFile,
    codec: Codec,
    cluster_db: &GlobalDb,
) -> CoreResult<(bool, u64, u64)> {
    let mut builder = netfile.into_builder()?;
    builder.config_mut().codec = codec;
    let mut system = builder.build()?;
    let report = system.run_update();
    let sim_db = system.snapshot();
    let oracle = system.oracle()?;
    let ok = report.all_closed && cluster_db.equivalent(&sim_db) && cluster_db.equivalent(&oracle);
    Ok((ok, report.messages, report.bytes))
}
