//! The socket-backed runtime: one `DbPeer` per OS process, speaking the
//! protocol over real TCP pipes (`p2p_transport`), plus the control plane
//! the cluster launcher drives it with.
//!
//! The peer logic is **unchanged** — the same `DbPeer` the simulator and
//! the threaded runtime host, with its Dijkstra–Scholten termination and
//! per-session routing, runs behind [`p2p_transport::SocketRuntime`].
//! What this module adds is the glue:
//!
//! * [`ProtoCodec`] — [`FrameCodec`] for [`ProtocolMsg`] under both wire
//!   codecs (JSON text / the binary encoding of [`crate::codec`]).
//! * [`ControlReq`] / [`ControlResp`] — the JSON control protocol every
//!   served node answers on its listen socket (inject a message, poll
//!   session fix-point, export the database, collect counters, shut
//!   down). Control frames are always JSON, independent of `--codec`:
//!   it is a cold path and greppable on the wire.
//! * [`serve`] — build the peer from a netfile and run it until a
//!   control shutdown.
//! * [`Controller`] — the client side of the control protocol.
//! * [`cluster`] — the multi-process launcher (`p2pdb launch`).
//!
//! Eager mode only: like the threaded runtime, real sockets have no
//! global lock-step, so the rounds variant (which the paper frames as the
//! synchronous alternative) stays simulator-only.

pub mod cluster;

use crate::config::UpdateMode;
use crate::error::{CoreError, CoreResult};
use crate::messages::ProtocolMsg;
use crate::netfile::NetworkFile;
use crate::peer::DbPeer;
use crate::stats::PeerStats;
use p2p_net::sim::Peer as _;
use p2p_net::{Codec, SessionId};
use p2p_relational::{ConstCatalog, Database, SymId};
use p2p_storage::{FileBackend, PeerStorage};
use p2p_topology::NodeId;
use p2p_transport::runtime::ControlAction;
use p2p_transport::{
    read_frame, write_frame, FrameCodec, Hello, SocketConfig, SocketRuntime, TransportError,
    TransportStats, DEFAULT_MAX_FRAME,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use cluster::{launch_cluster, ClusterConfig, ClusterOutcome, NodeCounters};

/// [`FrameCodec`] for protocol messages: JSON text or the varint-packed
/// binary encoding, matching what `SystemConfig::codec` selects in-process.
pub struct ProtoCodec(pub Codec);

impl FrameCodec<ProtocolMsg> for ProtoCodec {
    fn codec(&self) -> Codec {
        self.0
    }

    fn encode(&self, msg: &ProtocolMsg) -> Vec<u8> {
        match self.0 {
            Codec::Json => serde_json::to_string(msg)
                .expect("protocol messages are plain data")
                .into_bytes(),
            Codec::Binary => crate::codec::encode_msg(msg),
        }
    }

    fn decode(&self, bytes: &[u8]) -> Result<ProtocolMsg, String> {
        match self.0 {
            Codec::Json => {
                let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
                serde_json::from_str(text).map_err(|e| e.to_string())
            }
            Codec::Binary => crate::codec::decode_msg(bytes).map_err(|e| e.to_string()),
        }
    }
}

/// A database leaving its process: the local relations plus the symbol
/// definitions for every interned constant in them, so the receiving
/// process can [`absorb`](ConstCatalog::absorb) the catalog and remap the
/// rows into its own `SymId` space (the same contract
/// `p2p_storage::DatabaseSnapshot` honours on disk).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DbExport {
    /// `(symbol, string)` definitions for every id occurring in `db`.
    pub catalog: Vec<(SymId, Arc<str>)>,
    /// The relations, rows carrying the *sender's* `SymId`s.
    pub db: Database,
}

impl DbExport {
    /// Captures a database for the wire.
    pub fn capture(db: &Database) -> Self {
        DbExport {
            catalog: ConstCatalog::global().export(db.syms()),
            db: db.clone(),
        }
    }

    /// Rebuilds the database in this process's symbol space.
    pub fn import(self) -> Database {
        let remap = ConstCatalog::global().absorb(&self.catalog);
        let mut db = self.db;
        if !remap.is_identity() {
            db.remap_syms(&|s| remap.map(s));
        }
        db
    }
}

/// A control request (JSON frame on a control connection).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ControlReq {
    /// Liveness probe.
    Ping,
    /// Deliver `msg` to the peer as if sent by node `from` (the launcher's
    /// equivalent of the simulator's `inject` — this is how a session's
    /// `StartUpdate` enters the network).
    Inject {
        /// Apparent sender.
        from: u32,
        /// The message (boxed: `ProtocolMsg` dwarfs the other variants).
        msg: Box<ProtocolMsg>,
    },
    /// Is the session `{root, epoch}` closed at this peer?
    SessionClosed {
        /// Session root node.
        root: u32,
        /// Session epoch.
        epoch: u64,
    },
    /// Export the local database (catalog-bearing, see [`DbExport`]).
    Snapshot,
    /// Collect the peer's protocol counters and transport counters.
    Stats,
    /// Reply, flush, and exit the serve loop.
    Shutdown,
}

/// A control response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ControlResp {
    /// Answer to [`ControlReq::Ping`].
    Pong {
        /// The serving node's id.
        node: u32,
    },
    /// The injected message was delivered.
    Injected,
    /// Answer to [`ControlReq::SessionClosed`].
    SessionClosed {
        /// Whether the session is closed (or retired) at this peer.
        closed: bool,
    },
    /// Answer to [`ControlReq::Snapshot`].
    Snapshot(Box<DbExport>),
    /// Answer to [`ControlReq::Stats`].
    Stats {
        /// Protocol counters.
        peer: Box<PeerStats>,
        /// Socket counters.
        transport: TransportStats,
        /// Structured errors the peer recorded.
        errors: Vec<String>,
    },
    /// Acknowledges [`ControlReq::Shutdown`]; the process exits after this
    /// frame flushes.
    ShuttingDown,
    /// The request could not be served.
    Error {
        /// What went wrong.
        detail: String,
    },
}

/// Configuration of one served node.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The parsed network description (identical across all processes —
    /// that is what makes every process intern the same constants in the
    /// same order, and the dictionary remap in `absorb_dict` covers any
    /// drift).
    pub netfile: NetworkFile,
    /// Which declared node this process serves.
    pub node: u32,
    /// Listen address.
    pub listen: SocketAddr,
    /// Peer id → address for every *other* node.
    pub peers: BTreeMap<u32, SocketAddr>,
    /// Wire codec (must match the whole cluster; the handshake enforces it).
    pub codec: Codec,
    /// Durable state directory; `Some` attaches a `FileBackend` WAL +
    /// snapshot store under `<dir>/node-<id>` and resyncs over the socket
    /// after a restart.
    pub state_dir: Option<PathBuf>,
    /// WAL records between snapshots (durable only).
    pub snapshot_every: u64,
    /// Connection attempts for outgoing pipes (cluster cold-start budget).
    pub connect_attempts: u32,
    /// Pause between connection attempts, in milliseconds.
    pub connect_backoff_ms: u64,
}

impl ServeConfig {
    /// A config with the runtime defaults (JSON codec, volatile, ~10 s
    /// connect budget).
    pub fn new(netfile: NetworkFile, node: u32, listen: SocketAddr) -> Self {
        ServeConfig {
            netfile,
            node,
            listen,
            peers: BTreeMap::new(),
            codec: Codec::Json,
            state_dir: None,
            snapshot_every: 64,
            connect_attempts: 200,
            connect_backoff_ms: 50,
        }
    }
}

/// What [`serve`] reports after a clean shutdown.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// The node served.
    pub node: NodeId,
    /// Final protocol counters.
    pub peer_stats: PeerStats,
    /// Final transport counters.
    pub transport: TransportStats,
    /// Structured errors the peer recorded (empty on a healthy run).
    pub errors: Vec<String>,
}

/// A bound, not-yet-running served node. Splitting bind from run lets the
/// CLI report a dead listen address as a usage error before forking any
/// threads, and lets tests learn the resolved port of `--listen :0`.
pub struct NodeServer {
    runtime: SocketRuntime<ProtocolMsg, ProtoCodec>,
    peer: DbPeer,
    node: NodeId,
    recovered: bool,
}

fn map_transport(node: NodeId, e: TransportError) -> CoreError {
    match e {
        TransportError::PeerDisconnected { node, detail } => {
            CoreError::PeerDisconnected { node, detail }
        }
        TransportError::ConnectFailed { node, addr, detail } => CoreError::PeerDisconnected {
            node,
            detail: format!("never reachable at {addr}: {detail}"),
        },
        other => CoreError::Transport(format!("node {node}: {other}")),
    }
}

/// Builds the peer from the netfile and binds the listener.
pub fn prepare(cfg: &ServeConfig) -> CoreResult<NodeServer> {
    if !cfg.netfile.nodes.iter().any(|n| n.id == cfg.node) {
        return Err(CoreError::UnknownNode(cfg.node.to_string()));
    }
    let mut builder = cfg.netfile.into_builder()?;
    {
        let c = builder.config_mut();
        c.mode = UpdateMode::Eager; // sockets have no global lock-step
        c.codec = cfg.codec;
        c.durability = cfg.state_dir.is_some();
        c.snapshot_every = cfg.snapshot_every;
    }
    let node = NodeId(cfg.node);
    let mut peer = builder
        .build_peers()?
        .into_iter()
        .find(|(id, _)| *id == node)
        .map(|(_, p)| p)
        .expect("node id checked against the netfile above");

    // Swap the builder's in-memory store for the real on-disk one. An
    // existing store means this is a *restart*: adopt the disk state and
    // resync over the socket once the runtime is up.
    let mut recovered = false;
    if let Some(dir) = &cfg.state_dir {
        let node_dir = dir.join(format!("node-{}", cfg.node));
        let backend =
            FileBackend::open(&node_dir).map_err(|e| CoreError::Storage(e.to_string()))?;
        let storage = PeerStorage::with_codec(Box::new(backend), cfg.snapshot_every, cfg.codec);
        recovered = storage
            .recover(cfg.node)
            .map_err(|e| CoreError::Storage(e.to_string()))?
            .is_some();
        peer.attach_storage(storage)
            .map_err(|e| CoreError::Storage(e.to_string()))?;
    }

    let mut socket = SocketConfig::new(node, cfg.listen);
    socket.peers = cfg
        .peers
        .iter()
        .map(|(id, addr)| (NodeId(*id), *addr))
        .collect();
    // Accept inbound pipes from every *declared* node, not just those with
    // a known address — declaration is what makes a peer legitimate.
    socket.accept_from = cfg
        .netfile
        .nodes
        .iter()
        .map(|n| NodeId(n.id))
        .filter(|id| *id != node)
        .collect();
    socket.connect_attempts = cfg.connect_attempts;
    socket.connect_backoff = Duration::from_millis(cfg.connect_backoff_ms);

    let runtime = match SocketRuntime::bind(socket, ProtoCodec(cfg.codec)) {
        Ok(rt) => rt,
        Err(TransportError::Io { op, detail }) if op.starts_with("bind ") => {
            return Err(CoreError::Listen {
                addr: cfg.listen.to_string(),
                detail,
            });
        }
        Err(e) => return Err(map_transport(node, e)),
    };

    Ok(NodeServer {
        runtime,
        peer,
        node,
        recovered,
    })
}

impl NodeServer {
    /// The bound listen address (resolves `--listen 127.0.0.1:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.runtime.local_addr()
    }

    /// Whether the peer adopted prior on-disk state (restart).
    pub fn recovered(&self) -> bool {
        self.recovered
    }

    /// Serves until a control `Shutdown` or a fatal transport error.
    pub fn run(self) -> CoreResult<ServeOutcome> {
        let NodeServer {
            runtime,
            peer,
            node,
            recovered,
        } = self;
        let (peer, transport) = runtime
            .run(
                peer,
                |p, ctx| {
                    if recovered {
                        // A restarted durable node announces itself by
                        // re-requesting the fragments it was mid-way
                        // through — the same resync protocol the
                        // simulator's churn uses, now over TCP.
                        p.on_restart(ctx);
                    }
                },
                |p, body, ctx, stats| handle_control(p, &body, ctx, stats),
            )
            .map_err(|e| map_transport(node, e))?;
        Ok(ServeOutcome {
            node,
            peer_stats: peer.stats().clone(),
            transport,
            errors: peer.errors().to_vec(),
        })
    }
}

/// Builds the peer, binds, and serves — the body of `p2pdb serve`.
pub fn serve(cfg: &ServeConfig) -> CoreResult<ServeOutcome> {
    prepare(cfg)?.run()
}

fn handle_control(
    peer: &mut DbPeer,
    body: &[u8],
    ctx: &mut p2p_net::Context<ProtocolMsg>,
    transport: TransportStats,
) -> ControlAction {
    let resp_and_stop = |resp: ControlResp, stop: bool| {
        let bytes = serde_json::to_string(&resp)
            .expect("control responses are plain data")
            .into_bytes();
        if stop {
            ControlAction::ReplyThenShutdown(bytes)
        } else {
            ControlAction::Reply(bytes)
        }
    };
    let req: ControlReq = match std::str::from_utf8(body)
        .map_err(|e| e.to_string())
        .and_then(|t| serde_json::from_str(t).map_err(|e| e.to_string()))
    {
        Ok(req) => req,
        Err(detail) => return resp_and_stop(ControlResp::Error { detail }, false),
    };
    match req {
        ControlReq::Ping => resp_and_stop(ControlResp::Pong { node: peer.id().0 }, false),
        ControlReq::Inject { from, msg } => {
            peer.on_message(NodeId(from), *msg, ctx);
            resp_and_stop(ControlResp::Injected, false)
        }
        ControlReq::SessionClosed { root, epoch } => resp_and_stop(
            ControlResp::SessionClosed {
                closed: peer.session_closed(SessionId::new(NodeId(root), epoch)),
            },
            false,
        ),
        ControlReq::Snapshot => resp_and_stop(
            ControlResp::Snapshot(Box::new(DbExport::capture(peer.database()))),
            false,
        ),
        ControlReq::Stats => resp_and_stop(
            ControlResp::Stats {
                peer: Box::new(peer.stats().clone()),
                transport,
                errors: peer.errors().to_vec(),
            },
            false,
        ),
        ControlReq::Shutdown => resp_and_stop(ControlResp::ShuttingDown, true),
    }
}

/// Client side of the control protocol: one TCP connection, JSON frames,
/// strict request/reply.
pub struct Controller {
    stream: TcpStream,
    addr: SocketAddr,
}

impl Controller {
    /// Connects and handshakes, retrying until `deadline` — the serve
    /// process may still be binding its listener.
    pub fn connect(addr: SocketAddr, deadline: Instant) -> CoreResult<Controller> {
        loop {
            let last = match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
                Ok(mut stream) => {
                    let _ = stream.set_nodelay(true);
                    match p2p_transport::client_handshake(
                        &mut stream,
                        &Hello::control(),
                        DEFAULT_MAX_FRAME,
                    ) {
                        Ok(_) => return Ok(Controller { stream, addr }),
                        Err(e) => e.to_string(),
                    }
                }
                Err(e) => e.to_string(),
            };
            if Instant::now() >= deadline {
                return Err(CoreError::Transport(format!(
                    "control connect to {addr} timed out: {last}"
                )));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Sends one request and awaits its reply.
    pub fn request(&mut self, req: &ControlReq) -> CoreResult<ControlResp> {
        let body = serde_json::to_string(req)
            .expect("control requests are plain data")
            .into_bytes();
        write_frame(&mut self.stream, &body)
            .and_then(|_| self.stream.flush())
            .map_err(|e| CoreError::Transport(format!("control send to {}: {e}", self.addr)))?;
        let frame = read_frame(&mut self.stream, DEFAULT_MAX_FRAME)
            .map_err(|e| CoreError::Transport(format!("control read from {}: {e}", self.addr)))?
            .ok_or_else(|| {
                CoreError::Transport(format!("control peer {} closed the connection", self.addr))
            })?;
        let text = std::str::from_utf8(&frame)
            .map_err(|e| CoreError::Transport(format!("control reply from {}: {e}", self.addr)))?;
        serde_json::from_str(text)
            .map_err(|e| CoreError::Transport(format!("control reply from {}: {e}", self.addr)))
    }

    /// Injects a message into the served peer.
    pub fn inject(&mut self, from: u32, msg: ProtocolMsg) -> CoreResult<()> {
        match self.request(&ControlReq::Inject {
            from,
            msg: Box::new(msg),
        })? {
            ControlResp::Injected => Ok(()),
            other => Err(unexpected("Injected", &other)),
        }
    }

    /// Polls whether `sid` is closed at the served peer.
    pub fn session_closed(&mut self, sid: SessionId) -> CoreResult<bool> {
        match self.request(&ControlReq::SessionClosed {
            root: sid.root.0,
            epoch: sid.epoch,
        })? {
            ControlResp::SessionClosed { closed } => Ok(closed),
            other => Err(unexpected("SessionClosed", &other)),
        }
    }

    /// Fetches the served peer's database (remapped into this process's
    /// symbol space).
    pub fn snapshot(&mut self) -> CoreResult<Database> {
        match self.request(&ControlReq::Snapshot)? {
            ControlResp::Snapshot(export) => Ok(export.import()),
            other => Err(unexpected("Snapshot", &other)),
        }
    }

    /// Fetches counters.
    pub fn stats(&mut self) -> CoreResult<(PeerStats, TransportStats, Vec<String>)> {
        match self.request(&ControlReq::Stats)? {
            ControlResp::Stats {
                peer,
                transport,
                errors,
            } => Ok((*peer, transport, errors)),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Asks the served node to exit.
    pub fn shutdown(&mut self) -> CoreResult<()> {
        match self.request(&ControlReq::Shutdown)? {
            ControlResp::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(want: &str, got: &ControlResp) -> CoreError {
    CoreError::Transport(format!("control protocol: expected {want}, got {got:?}"))
}
