//! Errors for the core crate.

use p2p_topology::NodeId;
use std::fmt;

/// Result alias.
pub type CoreResult<T> = std::result::Result<T, CoreError>;

/// Errors raised while building or running a P2P system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A rule references a node name/id that was never declared.
    UnknownNode(String),
    /// Two nodes were declared with the same id.
    DuplicateNode(NodeId),
    /// Two rules share a name.
    DuplicateRule(String),
    /// The rule has no body atoms or no head atoms.
    MalformedRule(String),
    /// A rule's head and body name the same node (Definition 2 requires
    /// distinct indices).
    SelfRule(String),
    /// A rule head atom is not qualified and no default head node was given.
    UnresolvedHead(String),
    /// The rule failed validation against a node schema.
    SchemaViolation {
        /// The offending rule.
        rule: String,
        /// What went wrong.
        detail: String,
    },
    /// The rule set is not weakly acyclic and the configuration demands it.
    NotWeaklyAcyclic {
        /// A description of one offending cycle.
        witness: String,
    },
    /// An error bubbled up from the relational engine.
    Relational(p2p_relational::Error),
    /// The durable store failed (WAL append, snapshot, recovery).
    Storage(String),
    /// The run hit the simulator's event budget without quiescing.
    Diverged {
        /// Deliveries processed before giving up.
        delivered: u64,
    },
    /// The threaded runtime (one OS thread per peer) was asked to host
    /// more peers than its cap admits. Large networks belong on the
    /// sharded runtime, which multiplexes peers over a bounded pool.
    TooManyPeers {
        /// Requested peer count.
        peers: usize,
        /// The threaded runtime's cap.
        cap: usize,
    },
    /// A peer's handler panicked during a threaded run (the network was
    /// drained to quiescence first; see `p2p_net::WorkerPanic`).
    PeerPanicked {
        /// The node whose handler panicked.
        node: NodeId,
        /// The panic payload.
        detail: String,
    },
    /// A socket-backed node could not bind its listen address (port in
    /// use, bad interface). Kept distinct from the generic transport
    /// error so the CLI can report it as a usage problem.
    Listen {
        /// The address that failed to bind.
        addr: String,
        /// The OS error text.
        detail: String,
    },
    /// A remote peer's connection broke mid-run: the process died, closed
    /// mid-frame, or stopped accepting reconnects (the socket runtime's
    /// counterpart of [`CoreError::PeerPanicked`]).
    PeerDisconnected {
        /// The unreachable node.
        node: NodeId,
        /// The transport-level failure.
        detail: String,
    },
    /// Any other failure of the socket transport or the cluster control
    /// plane (handshake rejections, undecodable frames, launch failures).
    Transport(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownNode(n) => write!(f, "unknown node `{n}`"),
            CoreError::DuplicateNode(n) => write!(f, "node {n} declared twice"),
            CoreError::DuplicateRule(r) => write!(f, "rule `{r}` declared twice"),
            CoreError::MalformedRule(r) => write!(f, "malformed rule `{r}`"),
            CoreError::SelfRule(r) => {
                write!(f, "rule `{r}` has head and body at the same node")
            }
            CoreError::UnresolvedHead(r) => write!(
                f,
                "rule `{r}` has an unqualified head atom and no default head node"
            ),
            CoreError::SchemaViolation { rule, detail } => {
                write!(f, "rule `{rule}` violates a schema: {detail}")
            }
            CoreError::NotWeaklyAcyclic { witness } => {
                write!(f, "rule set is not weakly acyclic: {witness}")
            }
            CoreError::Relational(e) => write!(f, "relational error: {e}"),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Diverged { delivered } => write!(
                f,
                "network did not quiesce within the event budget ({delivered} deliveries)"
            ),
            CoreError::TooManyPeers { peers, cap } => write!(
                f,
                "threaded runtime cannot host {peers} peers (cap {cap}): \
                 use the sharded runtime (`--runtime sharded`) for large networks"
            ),
            CoreError::PeerPanicked { node, detail } => {
                write!(f, "peer {node} panicked during a threaded run: {detail}")
            }
            CoreError::Listen { addr, detail } => {
                write!(f, "cannot listen on {addr}: {detail}")
            }
            CoreError::PeerDisconnected { node, detail } => {
                write!(f, "peer {node} disconnected: {detail}")
            }
            CoreError::Transport(detail) => write!(f, "transport error: {detail}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<p2p_relational::Error> for CoreError {
    fn from(e: p2p_relational::Error) -> Self {
        CoreError::Relational(e)
    }
}
