//! Assembling and driving a P2P database system.
//!
//! [`P2PSystemBuilder`] collects node schemas, base data and coordination
//! rules, validates everything (schema conformance, weak acyclicity), and
//! produces a [`P2PSystem`] running on the deterministic simulator — or a
//! bag of peers for the threaded runtime via
//! [`P2PSystemBuilder::build_peers`] / [`run_update_threaded`].

use crate::config::{SystemConfig, UpdateMode};
use crate::dynamic::{ChangeOp, ChangeScript};
use crate::error::{CoreError, CoreResult};
use crate::messages::ProtocolMsg;
use crate::oracle::{global_fixpoint, GlobalDb};
use crate::peer::DbPeer;
use crate::rule::{CoordinationRule, RuleId, RuleSet};
use crate::stats::PeerStats;
use p2p_net::{
    BandwidthLatency, ChurnPlan, ConstantLatency, FaultPlan, LatencyModel, NetStats, RunOutcome,
    SessionId, ShardPlacement, ShardedNetwork, SimTime, Simulator, ThreadedNetwork, UniformLatency,
};
use p2p_relational::query::{evaluate_certain, parse_query};
use p2p_relational::{Database, DatabaseSchema, Tuple, Val};
use p2p_storage::{MemoryBackend, PeerStorage};
use p2p_topology::{scc, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Link latency specification (materialised into a model at build time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencySpec {
    /// Fixed delay per message.
    Constant(SimTime),
    /// Seeded uniform jitter.
    Uniform {
        /// Minimum delay.
        min: SimTime,
        /// Maximum delay.
        max: SimTime,
        /// RNG seed.
        seed: u64,
    },
    /// Propagation delay plus per-byte transmission cost.
    Bandwidth {
        /// Propagation delay.
        base: SimTime,
        /// Nanoseconds per byte.
        nanos_per_byte: u64,
    },
}

impl Default for LatencySpec {
    fn default() -> Self {
        LatencySpec::Constant(SimTime::from_millis(1))
    }
}

impl LatencySpec {
    fn boxed(self) -> Box<dyn LatencyModel> {
        match self {
            LatencySpec::Constant(t) => Box::new(ConstantLatency(t)),
            LatencySpec::Uniform { min, max, seed } => {
                Box::new(UniformLatency::new(min, max, seed))
            }
            LatencySpec::Bandwidth {
                base,
                nanos_per_byte,
            } => Box::new(BandwidthLatency {
                base,
                nanos_per_byte,
            }),
        }
    }
}

/// Builder for a P2P database system.
#[derive(Default)]
pub struct P2PSystemBuilder {
    schemas: BTreeMap<NodeId, DatabaseSchema>,
    data: BTreeMap<NodeId, Database>,
    names: BTreeMap<String, NodeId>,
    rules: RuleSet,
    config: SystemConfig,
    latency: LatencySpec,
    fault: Option<FaultPlan>,
    churn: Option<ChurnPlan>,
    super_peer: NodeId,
}

impl P2PSystemBuilder {
    /// An empty builder with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with the default name `A`, `B`, … (`N<id>` beyond 26).
    pub fn add_node_with_schema(&mut self, id: u32, schema_text: &str) -> CoreResult<()> {
        let name = NodeId(id).letter();
        self.add_named_node(&name, id, schema_text)
    }

    /// Adds a node with an explicit name used in rule texts.
    pub fn add_named_node(&mut self, name: &str, id: u32, schema_text: &str) -> CoreResult<()> {
        let node = NodeId(id);
        if self.schemas.contains_key(&node) {
            return Err(CoreError::DuplicateNode(node));
        }
        let schema = DatabaseSchema::parse(schema_text)?;
        self.data.insert(node, Database::new(schema.clone()));
        self.schemas.insert(node, schema);
        self.names.insert(name.to_string(), node);
        Ok(())
    }

    /// Inserts one base tuple at a node. Accepts both data-plane [`Val`]s
    /// and boundary [`p2p_relational::Value`]s (network files), interning
    /// the latter.
    pub fn insert<V: Into<Val>>(
        &mut self,
        id: u32,
        relation: &str,
        values: Vec<V>,
    ) -> CoreResult<()> {
        let node = NodeId(id);
        let db = self
            .data
            .get_mut(&node)
            .ok_or_else(|| CoreError::UnknownNode(node.to_string()))?;
        db.insert_values(relation, values.into_iter().map(Into::into).collect())?;
        Ok(())
    }

    /// Parses and registers a coordination rule (paper notation, node names
    /// resolved against the declared nodes).
    pub fn add_rule(&mut self, name: &str, text: &str) -> CoreResult<RuleId> {
        let rule = self.make_rule(name, text)?;
        self.rules.add(rule)
    }

    /// Parses a rule without registering it (used for dynamic-change scripts).
    pub fn make_rule(&self, name: &str, text: &str) -> CoreResult<CoordinationRule> {
        let names = &self.names;
        let resolve = move |s: &str| names.get(s).copied();
        let rule = CoordinationRule::parse(name, text, None, &resolve)?;
        rule.validate(&self.schemas)?;
        Ok(rule)
    }

    /// The rule set registered so far.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Mutable run configuration.
    pub fn config_mut(&mut self) -> &mut SystemConfig {
        &mut self.config
    }

    /// Sets the latency model.
    pub fn set_latency(&mut self, latency: LatencySpec) {
        self.latency = latency;
    }

    /// Installs a fault plan (drops / duplication / outages).
    pub fn set_fault(&mut self, fault: FaultPlan) {
        self.fault = Some(fault);
    }

    /// Installs a churn plan (scheduled peer crash/restart events, offsets
    /// relative to the start of the first update session). Usually paired
    /// with `config_mut().durability = true` — without durability a crash
    /// loses the peer's data for good — and driven to closure with
    /// [`P2PSystem::run_update_resilient`]. Simulator-only: the threaded
    /// runtime does not execute churn plans.
    pub fn set_churn(&mut self, churn: ChurnPlan) {
        self.churn = Some(churn);
    }

    /// Chooses the super-peer (default: node 0).
    pub fn set_super_peer(&mut self, id: u32) {
        self.super_peer = NodeId(id);
    }

    /// Validates the configuration and constructs the peers.
    pub fn build_peers(&mut self) -> CoreResult<Vec<(NodeId, DbPeer)>> {
        if !self.schemas.contains_key(&self.super_peer) {
            return Err(CoreError::UnknownNode(self.super_peer.to_string()));
        }
        for rule in self.rules.iter() {
            rule.validate(&self.schemas)?;
        }
        if self.config.require_weak_acyclicity {
            if let Err(witness) = self.rules.check_weak_acyclicity() {
                return Err(CoreError::NotWeaklyAcyclic { witness });
            }
        }
        let graph = self.rules.dependency_graph();
        let cyclic = scc::cyclic_nodes(&graph);
        let all_nodes: std::sync::Arc<[NodeId]> = self.schemas.keys().copied().collect();

        // One pass over the rule set builds the per-node views; the old
        // per-peer full scans made construction O(nodes × rules) — the first
        // thing to break past a few thousand peers.
        let mut rules_by_head: BTreeMap<NodeId, Vec<&crate::rule::CoordinationRule>> =
            BTreeMap::new();
        let mut pipes_of: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
        for rule in self.rules.iter() {
            rules_by_head.entry(rule.head_node).or_default().push(rule);
            for p in &rule.parts {
                pipes_of.entry(rule.head_node).or_default().insert(p.node);
                pipes_of.entry(p.node).or_default().insert(rule.head_node);
            }
        }

        let mut peers = Vec::with_capacity(all_nodes.len());
        for &node in self.schemas.keys() {
            let db = self.data[&node].clone();
            let mut peer = DbPeer::new(node, db, self.config);
            for rule in rules_by_head.get(&node).into_iter().flatten() {
                peer.install_rule((*rule).clone());
            }
            for &neighbor in pipes_of.get(&node).into_iter().flatten() {
                peer.add_pipe(neighbor);
            }
            peer.set_cycle_hint(cyclic.contains(&node));
            peer.set_roster(std::sync::Arc::clone(&all_nodes));
            if node == self.super_peer {
                peer.make_super(std::sync::Arc::clone(&all_nodes));
            }
            if self.config.durability {
                let storage = PeerStorage::with_codec(
                    Box::<MemoryBackend>::default(),
                    self.config.snapshot_every,
                    self.config.codec,
                );
                peer.attach_storage(storage)
                    .map_err(|e| CoreError::Storage(e.to_string()))?;
            }
            peers.push((node, peer));
        }
        Ok(peers)
    }

    /// Builds the simulator-backed system.
    pub fn build(mut self) -> CoreResult<P2PSystem> {
        let peers = self.build_peers()?;
        let mut sim = Simulator::new(self.latency.boxed());
        if let Some(fault) = self.fault.take() {
            sim.set_fault_plan(fault);
        }
        sim.set_max_events(self.config.effective_max_events(peers.len()));
        sim.set_codec(self.config.codec);
        if self.config.trace_capacity > 0 {
            sim.set_trace_capacity(self.config.trace_capacity);
        }
        for (id, peer) in peers {
            sim.add_peer(id, peer);
        }
        Ok(P2PSystem {
            sim,
            super_peer: self.super_peer,
            epoch: 0,
            rules: self.rules,
            initial: self.data,
            config: self.config,
            dynamic_rule_counter: 0,
            churn: self.churn.take(),
        })
    }
}

/// Report of one update session.
#[derive(Debug, Clone)]
pub struct UpdateReport {
    /// The session this report describes.
    pub session: SessionId,
    /// Simulator outcome (virtual time, deliveries, quiescence). Shared by
    /// every session of one [`P2PSystem::run_updates`] run.
    pub outcome: RunOutcome,
    /// Messages delivered during the run (whole network, all sessions plus
    /// control traffic — the historical meaning; for the per-session slice
    /// see [`UpdateReport::session_messages`]).
    pub messages: u64,
    /// Bytes delivered during the run (whole network).
    pub bytes: u64,
    /// Messages attributed to this session by the transport layer (every
    /// delivered message tagged with this [`SessionId`]).
    pub session_messages: u64,
    /// Bytes attributed to this session.
    pub session_bytes: u64,
    /// Every peer reached `state_u == closed` for this session.
    pub all_closed: bool,
    /// Rounds executed by this session (rounds mode; 0 in eager mode).
    pub rounds: u32,
    /// Times the driver re-drove a stalled session
    /// ([`P2PSystem::run_update_resilient`]; 0 on ordinary runs).
    pub redrives: u32,
    /// Errors recorded at peers during the run.
    pub errors: Vec<(NodeId, String)>,
}

/// Report of one discovery run.
#[derive(Debug, Clone)]
pub struct DiscoveryReport {
    /// Simulator outcome.
    pub outcome: RunOutcome,
    /// Messages delivered during discovery.
    pub messages: u64,
    /// All participating peers reached `state_d == closed`.
    pub all_closed: bool,
}

/// A built system running on the deterministic simulator.
pub struct P2PSystem {
    sim: Simulator<ProtocolMsg, DbPeer>,
    super_peer: NodeId,
    epoch: u64,
    rules: RuleSet,
    initial: BTreeMap<NodeId, Database>,
    config: SystemConfig,
    dynamic_rule_counter: u32,
    /// Churn plan not yet scheduled onto the simulator (taken by the first
    /// update session, so offsets are relative to that session's start).
    churn: Option<ChurnPlan>,
}

impl P2PSystem {
    /// The designated super-peer.
    pub fn super_peer(&self) -> NodeId {
        self.super_peer
    }

    /// The (initial) rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Runs topology discovery (algorithms A1–A3) to quiescence.
    pub fn run_discovery(&mut self) -> DiscoveryReport {
        let before = self.sim.stats().total_messages;
        self.sim.inject(
            self.super_peer,
            self.super_peer,
            ProtocolMsg::StartDiscovery,
        );
        let outcome = self.sim.run();
        // Closure is only meaningful for participants: discovery explores
        // the initiator's dependency-reachable region (paper A1–A3); nodes
        // outside it never see a request.
        let all_closed = self
            .sim
            .peers()
            .filter(|(_, p)| p.discovery_started())
            .all(|(_, p)| p.discovery_closed());
        DiscoveryReport {
            outcome,
            messages: self.sim.stats().total_messages - before,
            all_closed,
        }
    }

    /// Runs discovery initiated by **every** node (each becomes an owner):
    /// afterwards every node of the network knows its own maximal
    /// dependency paths, which is the state the paper assumes before the
    /// update phase ("each node first looks for the set of its maximal
    /// dependency paths").
    pub fn run_discovery_all(&mut self) -> DiscoveryReport {
        let before = self.sim.stats().total_messages;
        let nodes: Vec<NodeId> = self.sim.peers().map(|(id, _)| *id).collect();
        for n in nodes {
            self.sim.inject(n, n, ProtocolMsg::StartDiscovery);
        }
        let outcome = self.sim.run();
        let all_closed = self
            .sim
            .peers()
            .filter(|(_, p)| p.discovery_started())
            .all(|(_, p)| p.discovery_closed());
        DiscoveryReport {
            outcome,
            messages: self.sim.stats().total_messages - before,
            all_closed,
        }
    }

    /// Session-run prologue shared by every driver entry point: assigns one
    /// fresh session per **distinct** root (epoch bump), captures the
    /// traffic baseline, and schedules any pending churn plan relative to
    /// now. Session bookkeeping lives in exactly this one place. Duplicate
    /// roots are collapsed: a root runs one session at a time — a second
    /// same-root epoch launched concurrently would supersede (and thereby
    /// kill) the first mid-flight, which is the redrive semantics, not a
    /// way to run twice.
    fn begin_sessions(&mut self, roots: &[NodeId]) -> (Vec<SessionId>, u64, u64) {
        let before_msgs = self.sim.stats().total_messages;
        let before_bytes = self.sim.stats().total_bytes;
        let sids = assign_sessions(roots, || {
            self.epoch += 1;
            self.epoch
        });
        if let Some(plan) = self.churn.take() {
            self.sim.schedule_churn(&plan, self.sim.now());
        }
        (sids, before_msgs, before_bytes)
    }

    /// Runs a global update session rooted at the super-peer to quiescence.
    pub fn run_update(&mut self) -> UpdateReport {
        self.run_update_with_script(&ChangeScript::new())
    }

    /// Runs one global update session rooted at `root` — the N=1 special
    /// case of [`P2PSystem::run_updates`].
    pub fn run_update_from(&mut self, root: NodeId) -> UpdateReport {
        self.run_updates(&[root])
            .pop()
            .expect("one root, one report")
    }

    /// Runs **any number of interleaved global update sessions**, one per
    /// **distinct** root (duplicates are collapsed — a root runs one
    /// session at a time), in a single simulator run: all `StartUpdate`
    /// commands are injected up front, the sessions spread, interleave and
    /// terminate independently (each with its own Dijkstra–Scholten
    /// detector or echo waves), and the per-session reports are attributed
    /// from the transport layer's session-tagged traffic counters.
    ///
    /// Correctness anchor: the final global database is tuple-identical
    /// (modulo null renaming) to running the same sessions serially, and to
    /// the centralized fix-point oracle — interleaving changes wall-clock,
    /// never results.
    pub fn run_updates(&mut self, roots: &[NodeId]) -> Vec<UpdateReport> {
        let (sids, before_msgs, before_bytes) = self.begin_sessions(roots);
        for &sid in &sids {
            self.sim.inject(
                sid.root,
                sid.root,
                ProtocolMsg::StartUpdate { session: sid },
            );
        }
        let outcome = self.sim.run();
        sids.into_iter()
            .map(|sid| self.report(sid, outcome, before_msgs, before_bytes))
            .collect()
    }

    /// Runs a **query-dependent** update rooted at `node` (Section 5): only
    /// peers on dependency paths from `node` participate, refreshing exactly
    /// the data `node`'s local queries depend on. `all_closed` in the report
    /// refers to all peers and is generally false for scoped runs; check
    /// [`P2PSystem::closed`] on the root instead.
    pub fn run_scoped_update(&mut self, node: NodeId) -> UpdateReport {
        let (sids, before_msgs, before_bytes) = self.begin_sessions(&[node]);
        let sid = sids[0];
        self.sim
            .inject(node, node, ProtocolMsg::StartScopedUpdate { session: sid });
        let outcome = self.sim.run();
        self.report(sid, outcome, before_msgs, before_bytes)
    }

    /// Distributed query answering via materialisation: refreshes `node`'s
    /// dependency scope (query-dependent update), then answers locally. The
    /// paper reduces query answering to data fetching under its assumptions
    /// (Section 2); this is that reduction, made executable.
    pub fn distributed_query(&mut self, node: NodeId, text: &str) -> CoreResult<Vec<Tuple>> {
        self.run_scoped_update(node);
        self.query(node, text)
    }

    /// Runs a global update session with a dynamic-change script applied at
    /// its scheduled virtual times (Section 4).
    pub fn run_update_with_script(&mut self, script: &ChangeScript) -> UpdateReport {
        let (sids, before_msgs, before_bytes) = self.begin_sessions(&[self.super_peer]);
        let sid = sids[0];
        self.sim.inject(
            self.super_peer,
            self.super_peer,
            ProtocolMsg::StartUpdate { session: sid },
        );
        let base = self.sim.now();
        for change in script.sorted() {
            self.sim.inject_at(
                base + change.at,
                self.super_peer,
                self.super_peer,
                ProtocolMsg::ApplyChange { change: change.op },
            );
        }
        let outcome = self.sim.run();
        self.report(sid, outcome, before_msgs, before_bytes)
    }

    /// Runs a global update session **to closure under churn**: the N=1
    /// case of [`P2PSystem::run_updates_resilient`].
    pub fn run_update_resilient(&mut self, max_redrives: u32) -> UpdateReport {
        self.run_updates_resilient(&[self.super_peer], max_redrives)
            .pop()
            .expect("one root, one report")
    }

    /// Runs interleaved sessions **to closure under churn**: after the
    /// initial run, as long as some session is still open somewhere (a
    /// crash broke a wave or stranded an epoch) and re-drive budget
    /// remains, the driver re-drives exactly the unfinished sessions — a
    /// fresh round of the *same* session in rounds mode (session-scoped
    /// delta state survives, so the resumed wave ships deltas), a fresh
    /// session-tagged epoch from the same root in eager mode — and runs to
    /// quiescence again. Crashed-and-recovered peers rejoin through the
    /// ordinary protocol; the final clean run re-certifies each fix-point,
    /// so a crash mid-run recovers **all** interleaved sessions.
    ///
    /// Each report aggregates whole-run messages/bytes across all drives
    /// and carries the number of re-drives its session needed. With no
    /// churn and no faults the first run closes everything and this is
    /// exactly [`P2PSystem::run_updates`].
    pub fn run_updates_resilient(
        &mut self,
        roots: &[NodeId],
        max_redrives: u32,
    ) -> Vec<UpdateReport> {
        let before_msgs = self.sim.stats().total_messages;
        let before_bytes = self.sim.stats().total_bytes;
        let mut reports = self.run_updates(roots);
        let mut redrives = vec![0u32; reports.len()];
        for _ in 0..max_redrives {
            if reports.iter().all(|r| r.all_closed) {
                break;
            }
            for (i, report) in reports.iter().enumerate() {
                if report.all_closed {
                    continue;
                }
                redrives[i] += 1;
                let sid = report.session;
                match self.config.mode {
                    UpdateMode::Rounds => {
                        // Resume the same session at a round strictly above
                        // every peer's current one.
                        let next = self
                            .sim
                            .peers()
                            .map(|(_, p)| p.session_round(sid))
                            .max()
                            .unwrap_or(0)
                            + 1;
                        self.sim.inject(
                            sid.root,
                            sid.root,
                            ProtocolMsg::ResumeRounds {
                                session: sid,
                                round: next,
                            },
                        );
                    }
                    UpdateMode::Eager => {
                        // Fresh session from the same root; its first
                        // messages retire the stranded epoch's state.
                        self.epoch += 1;
                        let fresh = SessionId::new(sid.root, self.epoch);
                        self.sim.inject(
                            fresh.root,
                            fresh.root,
                            ProtocolMsg::StartUpdate { session: fresh },
                        );
                    }
                }
            }
            let outcome = self.sim.run();
            // Re-attribute: an eager re-drive continues under a fresh
            // session id, so each report tracks its root's latest session.
            reports = reports
                .iter()
                .map(|r| {
                    let latest = self.latest_session_of(r.session.root).unwrap_or(r.session);
                    self.report(latest, outcome, before_msgs, before_bytes)
                })
                .collect();
        }
        for (report, n) in reports.iter_mut().zip(redrives) {
            report.redrives = n;
        }
        reports
    }

    /// The newest session id assigned to `root` so far in this system.
    fn latest_session_of(&self, root: NodeId) -> Option<SessionId> {
        self.sim
            .stats()
            .per_session
            .keys()
            .filter(|s| s.root == root)
            .max()
            .copied()
    }

    fn report(
        &self,
        sid: SessionId,
        outcome: RunOutcome,
        before_msgs: u64,
        before_bytes: u64,
    ) -> UpdateReport {
        let all_closed = self.sim.peers().all(|(_, p)| p.session_closed(sid));
        let rounds = self
            .sim
            .peers()
            .map(|(_, p)| p.session_rounds(sid))
            .max()
            .unwrap_or(0);
        let errors = self
            .sim
            .peers()
            .flat_map(|(id, p)| p.errors().iter().map(move |e| (*id, e.clone())))
            .collect();
        let per_session = self.sim.stats().session(sid);
        UpdateReport {
            session: sid,
            outcome,
            messages: self.sim.stats().total_messages - before_msgs,
            bytes: self.sim.stats().total_bytes - before_bytes,
            session_messages: per_session.messages,
            session_bytes: per_session.bytes,
            all_closed,
            rounds,
            redrives: 0,
            errors,
        }
    }

    /// Inserts a base tuple at a node **after** build — the concurrent-
    /// writers workloads use this to model fresh data arriving at a root
    /// just before it initiates its session. Durable peers write-ahead-log
    /// the fact like any protocol-applied insertion, so a later crash
    /// recovers it; the oracle's initial state is updated too, so
    /// [`P2PSystem::oracle`] stays the reference for whatever was inserted
    /// before the sessions ran.
    pub fn insert<V: Into<Val>>(
        &mut self,
        node: NodeId,
        relation: &str,
        values: Vec<V>,
    ) -> CoreResult<()> {
        let vals: Vec<Val> = values.into_iter().map(Into::into).collect();
        let peer = self
            .sim
            .peer_mut(node)
            .ok_or_else(|| CoreError::UnknownNode(node.to_string()))?;
        peer.insert_base_fact(relation, vals.clone())?;
        if let Some(db) = self.initial.get_mut(&node) {
            db.insert_values(relation, vals)?;
        }
        Ok(())
    }

    /// Builds an `addLink` change op from rule text (assigning a fresh id
    /// outside the static range).
    pub fn make_add_link(&mut self, name: &str, text: &str) -> CoreResult<ChangeOp> {
        // Dynamic ids live far above builder-assigned ones.
        self.dynamic_rule_counter += 1;
        let id = RuleId(1_000_000 + self.dynamic_rule_counter);
        let names: BTreeMap<String, NodeId> =
            self.sim.peers().map(|(id, _)| (id.letter(), *id)).collect();
        let resolve = move |s: &str| names.get(s).copied();
        let mut rule = CoordinationRule::parse(name, text, None, &resolve)?;
        rule.id = id;
        Ok(ChangeOp::AddLink { rule })
    }

    /// Builds a `deleteLink` change op for a rule registered at build time.
    pub fn make_delete_link(&self, name: &str) -> CoreResult<ChangeOp> {
        let rule = self
            .rules
            .by_name(name)
            .ok_or_else(|| CoreError::UnknownNode(format!("rule `{name}`")))?;
        Ok(ChangeOp::DeleteLink {
            rule: rule.id,
            head: rule.head_node,
        })
    }

    /// A node's current database.
    pub fn database(&self, node: NodeId) -> Option<&Database> {
        self.sim.peer(node).map(|p| p.database())
    }

    /// Runs a **local** certain-answer query at a node — the whole point of
    /// the update algorithm: after closure, queries need no network.
    pub fn query(&self, node: NodeId, text: &str) -> CoreResult<Vec<Tuple>> {
        let q = parse_query(text)?;
        let db = self
            .database(node)
            .ok_or_else(|| CoreError::UnknownNode(node.to_string()))?;
        Ok(evaluate_certain(&q, db)?)
    }

    /// Snapshot of every node's database.
    pub fn snapshot(&self) -> GlobalDb {
        GlobalDb(
            self.sim
                .peers()
                .map(|(id, p)| (*id, p.database().clone()))
                .collect(),
        )
    }

    /// The centralized fix-point of the *initial* rules over the *initial*
    /// data — the Lemma 1 reference for static runs.
    pub fn oracle(&self) -> CoreResult<GlobalDb> {
        global_fixpoint(&self.initial, &self.rules, self.config.max_null_depth)
    }

    /// Fix-point under an alternative rule set (Definition 9 envelopes).
    pub fn oracle_with(&self, rules: &RuleSet) -> CoreResult<GlobalDb> {
        global_fixpoint(&self.initial, rules, self.config.max_null_depth)
    }

    /// Whether a node reached `state_u == closed`.
    pub fn closed(&self, node: NodeId) -> bool {
        self.sim
            .peer(node)
            .map(|p| p.update_closed())
            .unwrap_or(false)
    }

    /// Peer accessor (assertions).
    pub fn peer(&self, node: NodeId) -> Option<&DbPeer> {
        self.sim.peer(node)
    }

    /// Iterates peers.
    pub fn peers(&self) -> impl Iterator<Item = (&NodeId, &DbPeer)> {
        self.sim.peers()
    }

    /// Network statistics.
    pub fn net_stats(&self) -> &NetStats {
        self.sim.stats()
    }

    /// Message trace (enable via `SystemConfig::trace_capacity`).
    pub fn trace(&self) -> &p2p_net::Trace {
        self.sim.trace()
    }

    /// Sums every peer's protocol counters by direct inspection (no
    /// messages; the in-protocol alternative is [`P2PSystem::collect_stats`]).
    /// This is what the benches and the delta-wave ablation report:
    /// `rows_shipped`, `delta_answers_sent`, `rows_saved`,
    /// `stale_answers_sent` across the whole network.
    pub fn sum_stats(&self) -> PeerStats {
        let mut total = PeerStats::default();
        for (_, p) in self.sim.peers() {
            total.merge(p.stats());
        }
        total
    }

    /// Collects per-peer statistics *through the protocol* (the super-peer
    /// "commands other peers to send it statistical information").
    pub fn collect_stats(&mut self) -> BTreeMap<NodeId, PeerStats> {
        self.sim
            .inject(self.super_peer, self.super_peer, ProtocolMsg::CollectStats);
        self.sim.run();
        self.sim
            .peer(self.super_peer)
            .map(|p| p.sup.collected.clone())
            .unwrap_or_default()
    }

    /// Resets statistics everywhere through the protocol.
    pub fn reset_stats(&mut self) {
        self.sim
            .inject(self.super_peer, self.super_peer, ProtocolMsg::ResetStats);
        self.sim.run();
    }

    /// Broadcasts a replacement rule file through the protocol and adopts it
    /// as the system's rule set (Section 5's topology-swap feature).
    pub fn broadcast_rules(&mut self, rules: RuleSet) {
        let all: Vec<CoordinationRule> = rules.iter().cloned().collect();
        self.sim.inject(
            self.super_peer,
            self.super_peer,
            ProtocolMsg::BroadcastRules { rules: all },
        );
        self.sim.run();
        self.rules = rules;
    }
}

/// Assigns one fresh session per **distinct** root. Duplicate roots are
/// collapsed: a root runs one session at a time — a second same-root epoch
/// launched concurrently would supersede (and thereby kill) the first
/// mid-flight, which is the redrive semantics, not a way to run twice.
/// Shared by the simulator driver (monotone system-wide epochs) and the
/// threaded runner (per-run epochs), so session-identity rules live in one
/// place.
fn assign_sessions(roots: &[NodeId], mut next_epoch: impl FnMut() -> u64) -> Vec<SessionId> {
    let mut seen = std::collections::BTreeSet::new();
    roots
        .iter()
        .filter(|&&root| seen.insert(root))
        .map(|&root| SessionId::new(root, next_epoch()))
        .collect()
}

/// Runs one update session on the **threaded** runtime (real parallelism,
/// non-deterministic interleavings). Returns the final databases, closure
/// flag and merged transport stats.
pub fn run_update_threaded(builder: P2PSystemBuilder) -> CoreResult<(GlobalDb, NetStats, bool)> {
    let super_peer = builder.super_peer;
    run_updates_threaded(builder, &[super_peer])
}

/// Runs **concurrent update sessions** on the threaded runtime: one global
/// session per **distinct** root (duplicates collapsed, as in
/// [`P2PSystem::run_updates`]), all injected up front, interleaving on real
/// threads. Returns the final databases, merged transport stats (with
/// per-session attribution), and whether every session closed at every
/// peer.
pub fn run_updates_threaded(
    mut builder: P2PSystemBuilder,
    roots: &[NodeId],
) -> CoreResult<(GlobalDb, NetStats, bool)> {
    builder.config.mode = crate::config::UpdateMode::Eager;
    let codec = builder.config.codec;
    let peers = builder.build_peers()?;
    let mut net = ThreadedNetwork::new();
    net.set_codec(codec);
    for (id, peer) in peers {
        net.add_peer(id, peer);
    }
    let mut epoch = 0u64;
    let sids: Vec<SessionId> = assign_sessions(roots, || {
        epoch += 1;
        epoch
    });
    let initial = sids
        .iter()
        .map(|&sid| {
            (
                sid.root,
                sid.root,
                ProtocolMsg::StartUpdate { session: sid },
            )
        })
        .collect();
    let (peers, stats) = net.run(initial).map_err(|e| match e {
        p2p_net::ThreadedError::TooManyPeers { peers, cap } => {
            CoreError::TooManyPeers { peers, cap }
        }
        p2p_net::ThreadedError::Panic(p) => CoreError::PeerPanicked {
            node: p.node,
            detail: p.payload,
        },
    })?;
    finish_parallel_run(peers, stats, &sids)
}

/// Runs one update session on the **sharded** runtime: `shards` worker
/// threads (0 = one per core) multiplexing all peers, placed by
/// `placement`. Returns the final databases, merged transport stats and
/// closure flag, exactly like [`run_update_threaded`] — but scales to 10k+
/// peers.
pub fn run_update_sharded(
    builder: P2PSystemBuilder,
    shards: usize,
    placement: ShardPlacement,
) -> CoreResult<(GlobalDb, NetStats, bool)> {
    let super_peer = builder.super_peer;
    run_updates_sharded(builder, &[super_peer], shards, placement)
}

/// Runs **concurrent update sessions** on the sharded runtime: one global
/// session per **distinct** root (duplicates collapsed), all injected up
/// front, interleaving across the shard pool. Returns the final databases,
/// merged transport stats (with per-session attribution and
/// [`NetStats::cross_shard_sends`] locality), and whether every session
/// closed at every peer.
pub fn run_updates_sharded(
    mut builder: P2PSystemBuilder,
    roots: &[NodeId],
    shards: usize,
    placement: ShardPlacement,
) -> CoreResult<(GlobalDb, NetStats, bool)> {
    builder.config.mode = crate::config::UpdateMode::Eager;
    let codec = builder.config.codec;
    let peers = builder.build_peers()?;
    let mut net = ShardedNetwork::new();
    net.set_codec(codec);
    net.set_shards(shards);
    net.set_placement(placement);
    for (id, peer) in peers {
        net.add_peer(id, peer);
    }
    let mut epoch = 0u64;
    let sids: Vec<SessionId> = assign_sessions(roots, || {
        epoch += 1;
        epoch
    });
    let initial = sids
        .iter()
        .map(|&sid| {
            (
                sid.root,
                sid.root,
                ProtocolMsg::StartUpdate { session: sid },
            )
        })
        .collect();
    let (peers, stats) = net.run(initial).map_err(|p| CoreError::PeerPanicked {
        node: p.node,
        detail: p.payload,
    })?;
    finish_parallel_run(peers, stats, &sids)
}

/// Shared tail of the threaded and sharded drivers: closure check plus the
/// final database collection.
fn finish_parallel_run(
    peers: Vec<(NodeId, DbPeer)>,
    stats: NetStats,
    sids: &[SessionId],
) -> CoreResult<(GlobalDb, NetStats, bool)> {
    let all_closed = peers
        .iter()
        .all(|(_, p)| sids.iter().all(|&sid| p.session_closed(sid)));
    let dbs = GlobalDb(
        peers
            .into_iter()
            .map(|(id, p)| (id, p.database().clone()))
            .collect(),
    );
    Ok((dbs, stats, all_closed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UpdateMode;

    fn two_node_builder() -> P2PSystemBuilder {
        let mut b = P2PSystemBuilder::new();
        b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
        b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
        b.add_rule("r1", "B:b(X,Y) => A:a(X,Y)").unwrap();
        b.insert(1, "b", vec![Val::Int(1), Val::Int(2)]).unwrap();
        b.insert(1, "b", vec![Val::Int(3), Val::Int(4)]).unwrap();
        b
    }

    #[test]
    fn eager_copy_rule_end_to_end() {
        let mut sys = two_node_builder().build().unwrap();
        let report = sys.run_update();
        assert!(report.outcome.quiescent, "must quiesce");
        assert!(report.all_closed, "all nodes closed");
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        let a = sys.database(NodeId(0)).unwrap();
        assert_eq!(a.relation("a").unwrap().len(), 2);
        // Matches the oracle.
        assert!(sys.snapshot().equivalent(&sys.oracle().unwrap()));
    }

    #[test]
    fn rounds_copy_rule_end_to_end() {
        let mut b = two_node_builder();
        b.config_mut().mode = UpdateMode::Rounds;
        let mut sys = b.build().unwrap();
        let report = sys.run_update();
        assert!(report.outcome.quiescent);
        assert!(report.all_closed);
        assert!(report.rounds >= 1);
        assert!(sys.snapshot().equivalent(&sys.oracle().unwrap()));
    }

    #[test]
    fn local_query_after_update() {
        let mut sys = two_node_builder().build().unwrap();
        sys.run_update();
        let ans = sys.query(NodeId(0), "q(X) :- a(X, Y)").unwrap();
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn build_rejects_unknown_node_in_rule() {
        let mut b = P2PSystemBuilder::new();
        b.add_node_with_schema(0, "a(x: int).").unwrap();
        let err = b.add_rule("r", "Z:z(X) => A:a(X)").unwrap_err();
        assert!(matches!(err, CoreError::UnknownNode(_)));
    }

    #[test]
    fn build_rejects_non_weakly_acyclic_by_default() {
        let mut b = P2PSystemBuilder::new();
        b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
        b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
        b.add_rule("f", "A:a(X,Y) => B:b(Y,Z)").unwrap();
        b.add_rule("g", "B:b(X,Y) => A:a(Y,Z)").unwrap();
        assert!(matches!(
            b.build().err(),
            Some(CoreError::NotWeaklyAcyclic { .. })
        ));
    }

    #[test]
    fn discovery_on_two_nodes() {
        let mut sys = two_node_builder().build().unwrap();
        let report = sys.run_discovery();
        assert!(report.outcome.quiescent);
        assert!(report.all_closed);
        let paths = sys.peer(NodeId(0)).unwrap().paths().unwrap();
        assert_eq!(paths.len(), 1); // A→B
    }
}
